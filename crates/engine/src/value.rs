//! Runtime values with SQL semantics: NULL propagation, numeric coercion
//! between integers and floats, and a normalized form for hashing (group-by
//! and join keys).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use conquer_sql::dates;

use crate::error::{EngineError, Result};

/// A single SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// Days since 1970-01-01.
    Date(i32),
}

impl Value {
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Construct a date value from a `YYYY-MM-DD` string.
    ///
    /// # Panics
    /// Panics on invalid dates; intended for trusted construction sites
    /// (test fixtures, generators). The query path never calls this on user
    /// input — SQL date literals go through the parser, which reports
    /// malformed dates as parse errors.
    pub fn date(s: &str) -> Value {
        match dates::parse_date(s) {
            Some(d) => Value::Date(d),
            None => panic!("invalid date {s:?}"),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a nullable boolean (SQL three-valued logic).
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(EngineError::TypeError(format!(
                "expected boolean, got {other}"
            ))),
        }
    }

    /// The value as f64 for numeric computation; `None` for NULL.
    pub fn as_f64(&self) -> Result<Option<f64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(v) => Ok(Some(*v as f64)),
            Value::Float(v) => Ok(Some(*v)),
            other => Err(EngineError::TypeError(format!(
                "expected number, got {other}"
            ))),
        }
    }

    /// The name of the value's runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Date(_) => "date",
        }
    }

    /// SQL equality: NULL compares as unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Result<Option<bool>> {
        match self.sql_cmp(other)? {
            None => Ok(None),
            Some(ord) => Ok(Some(ord == Ordering::Equal)),
        }
    }

    /// SQL comparison: `None` when either side is NULL, error on
    /// incomparable types.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        use Value::*;
        Ok(Some(match (self, other) {
            (Null, _) | (_, Null) => return Ok(None),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a
                .partial_cmp(b)
                .ok_or_else(|| EngineError::TypeError("NaN comparison".into()))?,
            (Int(a), Float(b)) => cmp_i64_f64(*a, *b)?,
            (Float(a), Int(b)) => cmp_i64_f64(*b, *a)?.reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (a, b) => {
                return Err(EngineError::TypeError(format!(
                    "cannot compare {} with {}",
                    a.type_name(),
                    b.type_name()
                )))
            }
        }))
    }

    /// Total order used by ORDER BY: NULLs sort last, numerics compare
    /// across Int/Float, and distinct types order by type name (the engine
    /// never mixes non-numeric types in one column, but the order must be
    /// total for stable sorting).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Greater,
            (_, Null) => Ordering::Less,
            _ => self
                .sql_cmp(other)
                .ok()
                .flatten()
                .unwrap_or_else(|| self.type_name().cmp(other.type_name())),
        }
    }

    /// Arithmetic with NULL propagation. Integer arithmetic stays integral;
    /// any float operand promotes to float. Integer division truncates;
    /// division by zero is an error.
    pub fn arith(&self, op: ArithOp, other: &Value) -> Result<Value> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => Ok(Null),
            (Int(a), Int(b)) => arith_int(*a, op, *b),
            (Date(a), Int(b)) if op == ArithOp::Add => date_shift(*a, *b, false),
            (Date(a), Int(b)) if op == ArithOp::Sub => date_shift(*a, *b, true),
            (Date(a), Date(b)) if op == ArithOp::Sub => Ok(Int(i64::from(*a) - i64::from(*b))),
            _ => {
                let (Some(a), Some(b)) = (self.as_f64()?, other.as_f64()?) else {
                    return Ok(Null); // unreachable: NULLs handled above
                };
                let r = match op {
                    ArithOp::Add => a + b,
                    ArithOp::Sub => a - b,
                    ArithOp::Mul => a * b,
                    ArithOp::Div => {
                        if b == 0.0 {
                            return Err(EngineError::Eval("division by zero".into()));
                        }
                        a / b
                    }
                    ArithOp::Mod => {
                        if b == 0.0 {
                            return Err(EngineError::Eval("division by zero".into()));
                        }
                        a % b
                    }
                };
                Ok(Float(r))
            }
        }
    }
}

/// Shift a date (days since epoch) by an integer day count with overflow
/// checking.
fn date_shift(days: i32, by: i64, negate: bool) -> Result<Value> {
    let overflow = || EngineError::Eval("date arithmetic overflow".into());
    let by = i32::try_from(by).map_err(|_| overflow())?;
    let shifted = if negate {
        days.checked_sub(by)
    } else {
        days.checked_add(by)
    };
    Ok(Value::Date(shifted.ok_or_else(overflow)?))
}

/// Compare an i64 with an f64 exactly (no precision loss for large ints).
pub(crate) fn cmp_i64_f64(a: i64, b: f64) -> Result<Ordering> {
    if b.is_nan() {
        return Err(EngineError::TypeError("NaN comparison".into()));
    }
    // Fast path: both fit exactly in f64. (b is non-NaN here, so
    // partial_cmp cannot fail; Equal is a safe defensive fallback.)
    if a.unsigned_abs() < (1 << 52) {
        return Ok((a as f64).partial_cmp(&b).unwrap_or(Ordering::Equal));
    }
    if b >= 9.223_372_036_854_776e18 {
        return Ok(Ordering::Less);
    }
    if b < -9.223_372_036_854_776e18 {
        return Ok(Ordering::Greater);
    }
    let bt = b.trunc();
    match a.cmp(&(bt as i64)) {
        Ordering::Equal => Ok(0.0_f64
            .partial_cmp(&(b - bt))
            .unwrap_or(Ordering::Equal)
            .reverse()),
        other => Ok(other),
    }
}

/// Arithmetic operator selector for [`Value::arith`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

fn arith_int(a: i64, op: ArithOp, b: i64) -> Result<Value> {
    let overflow = || EngineError::Eval("integer overflow".into());
    Ok(match op {
        ArithOp::Add => Value::Int(a.checked_add(b).ok_or_else(overflow)?),
        ArithOp::Sub => Value::Int(a.checked_sub(b).ok_or_else(overflow)?),
        ArithOp::Mul => Value::Int(a.checked_mul(b).ok_or_else(overflow)?),
        ArithOp::Div => {
            if b == 0 {
                return Err(EngineError::Eval("division by zero".into()));
            }
            // checked_div guards i64::MIN / -1 as well as b == 0.
            Value::Int(a.checked_div(b).ok_or_else(overflow)?)
        }
        ArithOp::Mod => {
            if b == 0 {
                return Err(EngineError::Eval("division by zero".into()));
            }
            Value::Int(a.checked_rem(b).ok_or_else(overflow)?)
        }
    })
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => f.write_str(&dates::format_date(*d)),
        }
    }
}

impl PartialEq for Value {
    /// Structural equality used by tests and result comparison: NULL equals
    /// NULL here (unlike SQL predicate equality — use [`Value::sql_eq`] for
    /// that), and `Int(1) == Float(1.0)`.
    fn eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Int(a), Float(b)) | (Float(b), Int(a)) => {
                cmp_i64_f64(*a, *b).is_ok_and(|o| o == Ordering::Equal)
            }
            (Str(a), Str(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            _ => false,
        }
    }
}

/// A hashable, equality-comparable wrapper over a value for use in hash
/// tables (join keys, group keys, DISTINCT). Numeric values are normalized
/// so that `Int(2)` and `Float(2.0)` land in the same bucket; NULL is a
/// distinct key that groups with itself (SQL GROUP BY semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    Null,
    Bool(bool),
    Int(i64),
    /// A float that is not exactly an i64; stored as raw bits (with -0.0
    /// normalized to 0.0).
    FloatBits(u64),
    Str(Arc<str>),
    Date(i32),
}

impl From<&Value> for KeyValue {
    fn from(v: &Value) -> KeyValue {
        match v {
            Value::Null => KeyValue::Null,
            Value::Bool(b) => KeyValue::Bool(*b),
            Value::Int(i) => KeyValue::Int(*i),
            Value::Float(f) => {
                let norm = if *f == 0.0 { 0.0 } else { *f };
                if norm.fract() == 0.0 && norm.abs() < 9.2e18 && (norm as i64) as f64 == norm {
                    KeyValue::Int(norm as i64)
                } else {
                    KeyValue::FloatBits(norm.to_bits())
                }
            }
            Value::Str(s) => KeyValue::Str(Arc::clone(s)),
            Value::Date(d) => KeyValue::Date(*d),
        }
    }
}

/// A composite hash key over several values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key(pub Vec<KeyValue>);

impl Key {
    pub fn from_values(values: &[Value]) -> Key {
        Key(values.iter().map(KeyValue::from).collect())
    }

    /// `true` when any component is NULL — such keys never match anything
    /// under SQL join equality.
    pub fn has_null(&self) -> bool {
        self.0.iter().any(|k| matches!(k, KeyValue::Null))
    }
}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        for k in &self.0 {
            k.hash(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_comparison() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null).unwrap(), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)).unwrap(),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_eq(&Value::Int(3)).unwrap(),
            Some(true)
        );
    }

    #[test]
    fn large_int_float_comparison_is_exact() {
        let big = (1_i64 << 53) + 1; // not representable as f64
        assert_eq!(
            Value::Int(big)
                .sql_cmp(&Value::Float((1_i64 << 53) as f64))
                .unwrap(),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn incomparable_types_error() {
        assert!(Value::Int(1).sql_cmp(&Value::str("x")).is_err());
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(
            Value::Int(7).arith(ArithOp::Add, &Value::Int(5)).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            Value::Int(7).arith(ArithOp::Div, &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            Value::Float(1.5)
                .arith(ArithOp::Mul, &Value::Int(2))
                .unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Null.arith(ArithOp::Add, &Value::Int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn date_arithmetic() {
        let d = Value::date("1998-12-01");
        let shifted = d.arith(ArithOp::Sub, &Value::Int(90)).unwrap();
        assert_eq!(shifted, Value::date("1998-09-02"));
        let diff = Value::date("1998-12-01").arith(ArithOp::Sub, &Value::date("1998-09-02"));
        assert_eq!(diff.unwrap(), Value::Int(90));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(Value::Int(1).arith(ArithOp::Div, &Value::Int(0)).is_err());
        assert!(Value::Float(1.0)
            .arith(ArithOp::Mod, &Value::Float(0.0))
            .is_err());
    }

    #[test]
    fn integer_overflow_is_an_error() {
        assert!(Value::Int(i64::MAX)
            .arith(ArithOp::Add, &Value::Int(1))
            .is_err());
    }

    #[test]
    fn total_order_puts_nulls_last() {
        let mut vals = vec![Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2), Value::Null]);
    }

    #[test]
    fn key_normalizes_numeric_types() {
        let a = Key::from_values(&[Value::Int(2)]);
        let b = Key::from_values(&[Value::Float(2.0)]);
        assert_eq!(a, b);
        let c = Key::from_values(&[Value::Float(2.5)]);
        assert_ne!(a, c);
    }

    #[test]
    fn key_detects_nulls() {
        assert!(Key::from_values(&[Value::Int(1), Value::Null]).has_null());
        assert!(!Key::from_values(&[Value::Int(1)]).has_null());
    }

    #[test]
    fn negative_zero_normalizes() {
        let a = Key::from_values(&[Value::Float(0.0)]);
        let b = Key::from_values(&[Value::Float(-0.0)]);
        assert_eq!(a, b);
    }
}
