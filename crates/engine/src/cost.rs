//! Cardinality and cost estimation over physical plans.
//!
//! The [`Estimator`] turns catalog statistics ([`TableStats`], collected at
//! registration — see [`crate::stats`]) into per-operator output-row
//! estimates and an abstract plan cost. It is consulted by the optimizer
//! ([`crate::opt`]) to pick hash-join build sides, order joins, and gate
//! right-side filter pushes, and by `EXPLAIN` to print `est_rows=` next to
//! the measured row counts.
//!
//! Estimates use the textbook System-R-style model:
//!
//! * equality against a literal: `1/NDV`; column-to-column: `1/max(NDV)`
//! * range predicates: linear interpolation over the column's `[min, max]`
//! * `AND` multiplies, `OR` adds minus the overlap, `NOT` complements
//! * inner hash join: `|L|·|R| / max(NDV(l), NDV(r))` per key pair
//! * semi join: `|L| · min(1, NDV(r)/NDV(l))`; anti is the complement;
//!   left outer never drops below `|L|`
//! * grouping: capped product of group-column NDVs
//!
//! Estimation never affects answers — only operator orientation — so a bad
//! estimate costs time, not correctness (the stats-on/off differential
//! suite holds the engine to that).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use conquer_sql::BinaryOp;

use crate::col::ColBatch;
use crate::database::Database;
use crate::expr::{BoundExpr, SubqueryKind};
use crate::index::{Index, IndexAccess};
use crate::plan::{JoinType, Plan};
use crate::stats::{numeric_of, NodeStats, TableStats};
use crate::value::Value;

/// Default selectivity when a predicate's shape gives no information.
const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Default selectivity for predicates containing subqueries (EXISTS &c.).
const SUBQUERY_SEL: f64 = 0.5;
/// Rows sampled when deriving stats for a scan with no catalog entry
/// (materialized CTEs).
const SAMPLE_ROWS: usize = 4096;

/// Estimated statistics for one column of an operator's output.
#[derive(Debug, Clone)]
pub struct ColEst {
    /// Estimated number of distinct non-null values.
    pub ndv: f64,
    /// Estimated fraction of NULLs.
    pub null_frac: f64,
    /// Numeric range, when known (ints, floats, dates, bools).
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl ColEst {
    /// A column nothing is known about, in an output of `rows` rows.
    fn unknown(rows: f64) -> ColEst {
        ColEst {
            ndv: rows.max(1.0),
            null_frac: 0.0,
            min: None,
            max: None,
        }
    }

    /// Cap NDV at the (possibly reduced) output cardinality.
    fn capped(&self, rows: f64) -> ColEst {
        ColEst {
            ndv: self.ndv.min(rows.max(1.0)),
            ..self.clone()
        }
    }
}

/// Estimated output of a plan node: cardinality plus per-column stats.
#[derive(Debug, Clone)]
pub struct Derived {
    pub rows: f64,
    pub cols: Vec<ColEst>,
}

impl Derived {
    fn empty() -> Derived {
        Derived {
            rows: 1.0,
            cols: Vec::new(),
        }
    }
}

/// Cardinality/cost estimator. Cheap to construct; holds a lazily-filled
/// snapshot of catalog statistics plus a cache of sampled stats for scans
/// the catalog does not know (materialized CTEs).
pub struct Estimator<'a> {
    db: Option<&'a Database>,
    /// `Arc<ColBatch>` pointer → catalog stats, refreshed lazily from the
    /// database's scan cache.
    base: RefCell<HashMap<usize, Arc<TableStats>>>,
    /// `Arc<ColBatch>` pointer → stats sampled from the batch itself.
    sampled: RefCell<HashMap<usize, Arc<TableStats>>>,
    /// `Arc<ColBatch>` pointer → built secondary index over that batch.
    /// Empty unless constructed via [`Estimator::from_db_with_indexes`];
    /// the optimizer's access-path pass only sees indexes through here, so
    /// a plain [`Estimator::from_db`] reproduces pre-index plans exactly.
    indexes: HashMap<usize, Arc<Index>>,
}

impl<'a> Estimator<'a> {
    /// An estimator backed by the database's catalog statistics.
    pub fn from_db(db: &'a Database) -> Estimator<'a> {
        Estimator {
            db: Some(db),
            base: RefCell::new(HashMap::new()),
            sampled: RefCell::new(HashMap::new()),
            indexes: HashMap::new(),
        }
    }

    /// Like [`Estimator::from_db`], but also snapshots the database's
    /// built secondary indexes (triggering lazy builds for cached scans)
    /// so the optimizer can consider index access paths.
    pub fn from_db_with_indexes(db: &'a Database) -> Estimator<'a> {
        let mut est = Estimator::from_db(db);
        est.indexes = db.indexes_by_scan();
        est
    }

    /// An estimator with no catalog: every scan is sampled directly. Used
    /// in tests and anywhere a plan exists without its database.
    pub fn standalone() -> Estimator<'static> {
        Estimator {
            db: None,
            base: RefCell::new(HashMap::new()),
            sampled: RefCell::new(HashMap::new()),
            indexes: HashMap::new(),
        }
    }

    /// A standalone estimator carrying explicit indexes (tests).
    pub fn standalone_with_indexes(indexes: Vec<Arc<Index>>) -> Estimator<'static> {
        let mut est = Estimator::standalone();
        est.indexes = indexes
            .into_iter()
            .map(|i| (Arc::as_ptr(i.batch()) as *const () as usize, i))
            .collect();
        est
    }

    /// The built index over a scanned batch, if one is known. Keyed by
    /// `Arc` pointer — the same snapshot identity the plan's scan holds —
    /// so a stale index (built over a batch an `INSERT` has since
    /// replaced) can never be returned for a fresh scan.
    pub fn index_for(&self, cols: &Arc<ColBatch>) -> Option<&Arc<Index>> {
        self.indexes.get(&(Arc::as_ptr(cols) as *const () as usize))
    }

    /// Statistics for a scanned batch: catalog stats when the pointer maps
    /// to a registered table, sampled stats otherwise.
    fn scan_stats(&self, cols: &Arc<ColBatch>) -> Arc<TableStats> {
        let key = Arc::as_ptr(cols) as *const () as usize;
        if let Some(s) = self.base.borrow().get(&key) {
            return Arc::clone(s);
        }
        if let Some(db) = self.db {
            let mut base = self.base.borrow_mut();
            *base = db.stats_by_scan();
            if let Some(s) = base.get(&key) {
                return Arc::clone(s);
            }
        }
        if let Some(s) = self.sampled.borrow().get(&key) {
            return Arc::clone(s);
        }
        let n = cols.len().min(SAMPLE_ROWS);
        let width = cols.width();
        // Pivot only the sample prefix; a full-table pivot just to sample
        // would defeat the columnar scan cache.
        let sample: Vec<_> = (0..n).map(|i| cols.row_at(i)).collect();
        let mut stats = TableStats::collect(&sample, width);
        if n < cols.len() && n > 0 {
            // Scale the sample up: row-linear counters scale linearly, NDV
            // scales linearly but is capped by the true row count.
            let scale = cols.len() as f64 / n as f64;
            stats.row_count = cols.len() as u64;
            for c in &mut stats.columns {
                c.null_count = (c.null_count as f64 * scale) as u64;
                c.ndv = ((c.ndv as f64 * scale) as u64).min(stats.row_count);
            }
        }
        let stats = Arc::new(stats);
        self.sampled.borrow_mut().insert(key, Arc::clone(&stats));
        stats
    }

    /// Estimated output cardinality of a plan.
    pub fn est_rows(&self, plan: &Plan) -> f64 {
        self.derive(plan).rows
    }

    /// Estimated output cardinality and column stats of a plan.
    pub fn derive(&self, plan: &Plan) -> Derived {
        match plan {
            Plan::Unit => Derived::empty(),
            Plan::Scan { cols, schema } => {
                let stats = self.scan_stats(cols);
                let n = cols.len() as f64;
                let cols = schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, _)| match stats.columns.get(i) {
                        Some(c) => ColEst {
                            ndv: (c.ndv as f64).max(1.0),
                            null_frac: c.null_fraction(stats.row_count),
                            min: c.min,
                            max: c.max,
                        },
                        None => ColEst::unknown(n),
                    })
                    .collect();
                Derived { rows: n, cols }
            }
            Plan::IndexScan {
                cols,
                schema,
                index,
                access,
            } => {
                let stats = self.scan_stats(cols);
                let n = cols.len() as f64;
                let base: Vec<ColEst> = schema
                    .columns
                    .iter()
                    .enumerate()
                    .map(|(i, _)| match stats.columns.get(i) {
                        Some(c) => ColEst {
                            ndv: (c.ndv as f64).max(1.0),
                            null_frac: c.null_fraction(stats.row_count),
                            min: c.min,
                            max: c.max,
                        },
                        None => ColEst::unknown(n),
                    })
                    .collect();
                let sel = self.index_access_selectivity(index, access, &base);
                let rows = (n * sel).max(0.0);
                let cols = base.iter().map(|c| c.capped(rows)).collect();
                Derived { rows, cols }
            }
            Plan::Filter { input, predicate } => {
                let d = self.derive(input);
                let sel = self.selectivity(predicate, &d);
                let rows = (d.rows * sel).max(0.0);
                let cols = d.cols.iter().map(|c| c.capped(rows)).collect();
                Derived { rows, cols }
            }
            Plan::Project { input, exprs, .. } => {
                let d = self.derive(input);
                let cols = exprs
                    .iter()
                    .map(|e| match e {
                        BoundExpr::Column { depth: 0, index } => d
                            .cols
                            .get(*index)
                            .cloned()
                            .unwrap_or_else(|| ColEst::unknown(d.rows)),
                        BoundExpr::Literal(v) => ColEst {
                            ndv: 1.0,
                            null_frac: if v.is_null() { 1.0 } else { 0.0 },
                            min: numeric_of(v),
                            max: numeric_of(v),
                        },
                        _ => ColEst::unknown(d.rows),
                    })
                    .collect();
                Derived { rows: d.rows, cols }
            }
            Plan::Rename { input, .. } => self.derive(input),
            Plan::HashJoin {
                left,
                right,
                kind,
                left_keys,
                right_keys,
                residual,
                ..
            } => {
                let l = self.derive(left);
                let r = self.derive(right);
                self.join_cardinality(&l, &r, *kind, left_keys, right_keys, residual.as_ref())
            }
            Plan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
                ..
            } => {
                let l = self.derive(left);
                let r = self.derive(right);
                let mut joined = Derived {
                    rows: l.rows * r.rows,
                    cols: l.cols.iter().chain(r.cols.iter()).cloned().collect(),
                };
                if let Some(on) = on {
                    joined.rows *= self.selectivity(on, &joined);
                }
                let rows = match kind {
                    JoinType::Inner => joined.rows,
                    JoinType::LeftOuter => joined.rows.max(l.rows),
                    JoinType::Semi => l.rows * SUBQUERY_SEL,
                    JoinType::Anti => l.rows * (1.0 - SUBQUERY_SEL),
                };
                let width = match kind {
                    JoinType::Inner | JoinType::LeftOuter => joined.cols,
                    JoinType::Semi | JoinType::Anti => l.cols,
                };
                Derived {
                    rows,
                    cols: width.iter().map(|c| c.capped(rows)).collect(),
                }
            }
            Plan::Aggregate {
                input,
                group_exprs,
                aggs,
                ..
            } => {
                let d = self.derive(input);
                let rows = if group_exprs.is_empty() {
                    1.0
                } else {
                    let mut groups = 1.0f64;
                    for g in group_exprs {
                        groups *= self.expr_ndv(g, &d);
                    }
                    groups.min(d.rows).max(1.0)
                };
                let mut cols: Vec<ColEst> = group_exprs
                    .iter()
                    .map(|g| self.expr_col(g, &d).capped(rows))
                    .collect();
                cols.extend((0..aggs.len()).map(|_| ColEst::unknown(rows)));
                Derived { rows, cols }
            }
            Plan::Distinct { input } => {
                let d = self.derive(input);
                let mut groups = 1.0f64;
                for c in &d.cols {
                    groups *= c.ndv.max(1.0);
                }
                let rows = groups.min(d.rows).max(if d.rows > 0.0 { 1.0 } else { 0.0 });
                let cols = d.cols.iter().map(|c| c.capped(rows)).collect();
                Derived { rows, cols }
            }
            Plan::UnionAll { left, right } => {
                let l = self.derive(left);
                let r = self.derive(right);
                let rows = l.rows + r.rows;
                let cols = l
                    .cols
                    .iter()
                    .zip(r.cols.iter())
                    .map(|(a, b)| ColEst {
                        ndv: (a.ndv + b.ndv).min(rows.max(1.0)),
                        null_frac: (a.null_frac + b.null_frac) / 2.0,
                        min: match (a.min, b.min) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            _ => None,
                        },
                        max: match (a.max, b.max) {
                            (Some(x), Some(y)) => Some(x.max(y)),
                            _ => None,
                        },
                    })
                    .collect();
                Derived { rows, cols }
            }
            Plan::Sort { input, .. } => self.derive(input),
            Plan::Limit { input, n } => {
                let d = self.derive(input);
                Derived {
                    rows: d.rows.min(*n as f64),
                    cols: d.cols,
                }
            }
        }
    }

    /// Join output estimate for hash joins.
    fn join_cardinality(
        &self,
        l: &Derived,
        r: &Derived,
        kind: JoinType,
        left_keys: &[BoundExpr],
        right_keys: &[BoundExpr],
        residual: Option<&BoundExpr>,
    ) -> Derived {
        // Matching-pair estimate: |L|·|R| / Π max(NDV_l, NDV_r).
        let mut inner = l.rows * r.rows;
        let mut match_frac = 1.0f64; // fraction of left rows with ≥1 match
        for (lk, rk) in left_keys.iter().zip(right_keys.iter()) {
            let ndv_l = self.expr_ndv(lk, l);
            let ndv_r = self.expr_ndv(rk, r);
            inner /= ndv_l.max(ndv_r).max(1.0);
            match_frac = match_frac.min((ndv_r / ndv_l.max(1.0)).min(1.0));
        }
        let mut joined_cols: Vec<ColEst> = l.cols.iter().chain(r.cols.iter()).cloned().collect();
        if let Some(res) = residual {
            let joined = Derived {
                rows: inner,
                cols: joined_cols.clone(),
            };
            let sel = self.selectivity(res, &joined);
            inner *= sel;
            match_frac *= sel;
        }
        let rows = match kind {
            JoinType::Inner => inner,
            JoinType::LeftOuter => inner.max(l.rows),
            JoinType::Semi => l.rows * match_frac,
            JoinType::Anti => l.rows * (1.0 - match_frac),
        };
        let cols = match kind {
            JoinType::Inner | JoinType::LeftOuter => {
                joined_cols = joined_cols.iter().map(|c| c.capped(rows)).collect();
                joined_cols
            }
            JoinType::Semi | JoinType::Anti => l.cols.iter().map(|c| c.capped(rows)).collect(),
        };
        Derived { rows, cols }
    }

    /// Fraction of a table's rows an index access keeps: `1/NDV` per
    /// equality column (zero when the literal falls outside the column's
    /// observed range), linear interpolation over `[min, max]` for a
    /// range probe — the same model the equivalent `Filter` predicate
    /// would get, so `IndexScan` vs `SeqScan`+`Filter` compare on cost,
    /// not on cardinality artifacts.
    fn index_access_selectivity(
        &self,
        index: &Index,
        access: &IndexAccess,
        cols: &[ColEst],
    ) -> f64 {
        let col = |i: usize| cols.get(i).cloned().unwrap_or_else(|| ColEst::unknown(1.0));
        match access {
            IndexAccess::Eq(values) => {
                let mut sel = 1.0f64;
                for (&ci, v) in index.cols().iter().zip(values) {
                    let c = col(ci);
                    if let (Some(n), Some(min), Some(max)) = (numeric_of(v), c.min, c.max) {
                        if n < min || n > max {
                            return 0.0;
                        }
                    }
                    sel /= c.ndv.max(1.0);
                }
                sel
            }
            IndexAccess::Range { lo, hi } => {
                let c = col(index.cols()[0]);
                let (Some(min), Some(max)) = (c.min, c.max) else {
                    return DEFAULT_SEL;
                };
                if max <= min {
                    return DEFAULT_SEL;
                }
                let frac =
                    |v: &Value| numeric_of(v).map(|n| ((n - min) / (max - min)).clamp(0.0, 1.0));
                let lo_f = lo.as_ref().and_then(|(v, _)| frac(v)).unwrap_or(0.0);
                let hi_f = hi.as_ref().and_then(|(v, _)| frac(v)).unwrap_or(1.0);
                (hi_f - lo_f).clamp(0.0, 1.0)
            }
        }
    }

    /// Column stats an expression evaluates to over `input`.
    fn expr_col(&self, e: &BoundExpr, input: &Derived) -> ColEst {
        match e {
            BoundExpr::Column { depth: 0, index } => input
                .cols
                .get(*index)
                .cloned()
                .unwrap_or_else(|| ColEst::unknown(input.rows)),
            BoundExpr::Literal(v) => ColEst {
                ndv: 1.0,
                null_frac: if v.is_null() { 1.0 } else { 0.0 },
                min: numeric_of(v),
                max: numeric_of(v),
            },
            _ => ColEst::unknown(input.rows),
        }
    }

    fn expr_ndv(&self, e: &BoundExpr, input: &Derived) -> f64 {
        self.expr_col(e, input).ndv.max(1.0)
    }

    /// Selectivity of a predicate over an operator output: the estimated
    /// fraction of rows for which it evaluates to TRUE.
    pub fn selectivity(&self, pred: &BoundExpr, input: &Derived) -> f64 {
        let sel = match pred {
            BoundExpr::Literal(Value::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            BoundExpr::Literal(Value::Null) => 0.0,
            BoundExpr::Binary { op, left, right } => match op {
                BinaryOp::And => self.selectivity(left, input) * self.selectivity(right, input),
                BinaryOp::Or => {
                    let a = self.selectivity(left, input);
                    let b = self.selectivity(right, input);
                    a + b - a * b
                }
                BinaryOp::Eq => self.eq_selectivity(left, right, input),
                BinaryOp::NotEq => 1.0 - self.eq_selectivity(left, right, input),
                BinaryOp::Lt | BinaryOp::LtEq => self.range_selectivity(left, right, input, true),
                BinaryOp::Gt | BinaryOp::GtEq => self.range_selectivity(left, right, input, false),
                _ => DEFAULT_SEL,
            },
            BoundExpr::Not(inner) => 1.0 - self.selectivity(inner, input),
            BoundExpr::IsNull { expr, negated } => {
                let nf = self.expr_col(expr, input).null_frac;
                if *negated {
                    1.0 - nf
                } else {
                    nf
                }
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let ndv = self.expr_ndv(expr, input);
                let s = (list.len() as f64 / ndv).min(1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            BoundExpr::Like { negated, .. } => {
                if *negated {
                    0.75
                } else {
                    0.25
                }
            }
            BoundExpr::Subquery {
                kind: SubqueryKind::Exists { negated } | SubqueryKind::In { negated, .. },
                ..
            } => {
                if *negated {
                    1.0 - SUBQUERY_SEL
                } else {
                    SUBQUERY_SEL
                }
            }
            _ => DEFAULT_SEL,
        };
        sel.clamp(0.0, 1.0)
    }

    /// `left = right` selectivity.
    fn eq_selectivity(&self, left: &BoundExpr, right: &BoundExpr, input: &Derived) -> f64 {
        let col_l = matches!(left, BoundExpr::Column { depth: 0, .. });
        let col_r = matches!(right, BoundExpr::Column { depth: 0, .. });
        match (col_l, col_r) {
            (true, true) => {
                let a = self.expr_ndv(left, input);
                let b = self.expr_ndv(right, input);
                1.0 / a.max(b)
            }
            (true, false) => self.eq_col_const(left, right, input),
            (false, true) => self.eq_col_const(right, left, input),
            _ => DEFAULT_SEL,
        }
    }

    fn eq_col_const(&self, col: &BoundExpr, other: &BoundExpr, input: &Derived) -> f64 {
        let c = self.expr_col(col, input);
        if let BoundExpr::Literal(v) = other {
            // A literal outside the column's observed range matches nothing.
            if let (Some(n), Some(min), Some(max)) = (numeric_of(v), c.min, c.max) {
                if n < min || n > max {
                    return 0.0;
                }
            }
        }
        1.0 / c.ndv.max(1.0)
    }

    /// `left < right` (`less == true`) or `left > right` selectivity,
    /// interpolated over the column's numeric range when one side is a
    /// column and the other a literal.
    fn range_selectivity(
        &self,
        left: &BoundExpr,
        right: &BoundExpr,
        input: &Derived,
        less: bool,
    ) -> f64 {
        let (col, lit, col_below) = match (left, right) {
            (c @ BoundExpr::Column { depth: 0, .. }, BoundExpr::Literal(v)) => (c, v, less),
            (BoundExpr::Literal(v), c @ BoundExpr::Column { depth: 0, .. }) => (c, v, !less),
            _ => return DEFAULT_SEL,
        };
        let stats = self.expr_col(col, input);
        let (Some(n), Some(min), Some(max)) = (numeric_of(lit), stats.min, stats.max) else {
            return DEFAULT_SEL;
        };
        if max <= min {
            // Degenerate range: all values equal; the comparison is all-or-
            // nothing.
            let holds = if col_below { min < n } else { min > n };
            return if holds { 1.0 } else { 1.0 / stats.ndv.max(1.0) };
        }
        let frac = ((n - min) / (max - min)).clamp(0.0, 1.0);
        let sel = if col_below { frac } else { 1.0 - frac };
        sel.clamp(0.0, 1.0)
    }

    /// Abstract cost of executing a plan: rows touched per operator, summed
    /// over the tree. Build sides are weighted slightly heavier than probe
    /// sides to reflect hash-table construction.
    pub fn cost(&self, plan: &Plan) -> f64 {
        let out = self.est_rows(plan);
        let children_cost: f64 = plan.children().iter().map(|c| self.cost(c)).sum();
        let own = match plan {
            Plan::Unit => 0.0,
            Plan::Scan { cols, .. } => cols.len() as f64,
            // An index probe touches only the matching rows (plus a
            // constant for the lookup itself) — this is what lets the
            // optimizer price IndexScan against SeqScan+Filter.
            Plan::IndexScan { .. } => out + 1.0,
            Plan::Filter { input, .. } => self.est_rows(input),
            Plan::Project { input, .. } | Plan::Rename { input, .. } => self.est_rows(input),
            Plan::HashJoin {
                left,
                right,
                build_index,
                ..
            } => {
                // Probe side scans once; the build side pays hash-table
                // construction (heavier per row); plus emission. A
                // prebuilt index build side skips construction entirely.
                let build = if build_index.is_some() {
                    0.0
                } else {
                    2.0 * self.est_rows(right)
                };
                self.est_rows(left) + build + out
            }
            Plan::NestedLoopJoin { left, right, .. } => {
                self.est_rows(left) * self.est_rows(right).max(1.0)
            }
            Plan::Aggregate { input, .. } | Plan::Distinct { input } => self.est_rows(input) + out,
            Plan::UnionAll { .. } => out,
            Plan::Sort { input, .. } => {
                let n = self.est_rows(input);
                n * (n.max(2.0)).log2()
            }
            Plan::Limit { .. } => 0.0,
        };
        own + children_cost
    }
}

/// Fill `est_rows` into a [`NodeStats`] tree shaped like `plan` (one bottom-
/// up pass; children are derived once and reused).
pub fn annotate(est: &Estimator<'_>, plan: &Plan, stats: &mut NodeStats) {
    fn walk(est: &Estimator<'_>, plan: &Plan, stats: &mut NodeStats) {
        for (child_plan, child_stats) in plan.children().into_iter().zip(&mut stats.children) {
            walk(est, child_plan, child_stats);
        }
        stats.est_rows = Some(est.est_rows(plan).round().max(0.0) as u64);
    }
    walk(est, plan, stats);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Database;

    fn demo_db() -> Database {
        let db = Database::new();
        db.run_script(
            "create table emp (id integer, dept integer, sal float);
             insert into emp values
               (1, 10, 100.0), (2, 10, 200.0), (3, 20, 300.0), (4, 20, 400.0),
               (5, 30, 500.0), (6, 30, 600.0), (7, 30, 700.0), (8, 40, 800.0);
             create table dept (id integer, name text);
             insert into dept values (10, 'a'), (20, 'b'), (30, 'c'), (40, 'd');",
        )
        .unwrap();
        db
    }

    fn plan_of(db: &Database, sql: &str) -> Plan {
        let q = conquer_sql::parse_query(sql).unwrap();
        db.plan(&q, &Default::default()).unwrap()
    }

    #[test]
    fn scan_estimate_is_exact() {
        let db = demo_db();
        let plan = plan_of(&db, "select * from emp");
        let est = Estimator::from_db(&db);
        assert_eq!(est.est_rows(&plan), 8.0);
    }

    #[test]
    fn equality_filter_uses_ndv() {
        let db = demo_db();
        let plan = plan_of(&db, "select * from emp where dept = 10");
        let est = Estimator::from_db(&db);
        // 8 rows / 4 distinct depts = 2.
        assert!((est.est_rows(&plan) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_range_literal_estimates_zero() {
        let db = demo_db();
        let plan = plan_of(&db, "select * from emp where dept = 99");
        let est = Estimator::from_db(&db);
        assert_eq!(est.est_rows(&plan), 0.0);
    }

    #[test]
    fn range_filter_interpolates() {
        let db = demo_db();
        let est = Estimator::from_db(&db);
        // sal in [100, 800]; sal < 450 covers half the range.
        let plan = plan_of(&db, "select * from emp where sal < 450");
        let got = est.est_rows(&plan);
        assert!((3.0..=5.0).contains(&got), "got {got}");
    }

    #[test]
    fn join_estimate_divides_by_key_ndv() {
        let db = demo_db();
        let plan = plan_of(&db, "select * from emp, dept where emp.dept = dept.id");
        let est = Estimator::from_db(&db);
        // 8·4 / max(4,4) = 8 matching pairs.
        assert!((est.est_rows(&plan) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn group_by_estimates_ndv_groups() {
        let db = demo_db();
        let plan = plan_of(&db, "select dept, count(*) from emp group by dept");
        let est = Estimator::from_db(&db);
        assert!((est.est_rows(&plan) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn standalone_estimator_samples_scans() {
        let db = demo_db();
        let plan = plan_of(&db, "select * from emp where dept = 10");
        let est = Estimator::standalone();
        assert!((est.est_rows(&plan) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cost_prefers_small_build_side() {
        let db = demo_db();
        let est = Estimator::from_db(&db);
        // Probing with the big side and building on the small side must be
        // cheaper than the reverse under the cost model.
        let fwd = plan_of(&db, "select * from emp join dept on emp.dept = dept.id");
        let c_fwd = est.cost(&fwd);
        assert!(c_fwd > 0.0);
    }

    #[test]
    fn annotate_fills_every_node() {
        let db = demo_db();
        let plan = plan_of(
            &db,
            "select dept, count(*) from emp where sal > 0 group by dept",
        );
        let est = Estimator::from_db(&db);
        let mut stats = NodeStats::for_plan(&plan);
        annotate(&est, &plan, &mut stats);
        fn check(s: &NodeStats) {
            assert!(s.est_rows.is_some());
            s.children.iter().for_each(check);
        }
        check(&stats);
    }
}
