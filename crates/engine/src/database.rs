//! The database: a catalog of named tables plus the query entry points.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use std::sync::{Mutex, RwLock};

use std::path::Path;

use conquer_sql::ast::{Expr, Query, Statement};
use conquer_sql::{parse_query, parse_statements};
use conquer_storage::{Store, StoreOptions, StoreStatus, WalRecord};

use crate::col::ColBatch;
use crate::durable::{
    self, Durability, DurabilityOptions, KIND_CREATE, KIND_DROP, KIND_INDEX, KIND_INSERT,
    KIND_SNAPSHOT,
};
use crate::error::{EngineError, Result};
use crate::exec;
use crate::governor::Governor;
use crate::index::Index;
use crate::plan::{literal_value, ExecOptions, Plan, Planner};
use crate::schema::DataType;
use crate::stats::TableStats;
use crate::table::{Row, Rows, Table};
use crate::value::Value;

/// Recover a lock even if a previous holder panicked: the catalog maps are
/// valid after any interrupted operation (worst case a stale scan cache
/// entry, which is overwritten on next use).
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// An in-memory database: thread-safe catalog of tables.
///
/// Reads (queries) take a read lock only long enough to snapshot `Arc`s to
/// the tables they touch, so concurrent query execution over a shared
/// `&Database` is cheap. Scan-ready row batches are cached per table and
/// invalidated on registration, so repeated references to a table (within
/// one query or across queries) share a single `Arc<Rows>`.
///
/// The database is `Send + Sync` and designed to be shared as
/// `Arc<Database>` across many session threads (the read-mostly contract
/// `conquer-serve` relies on): all interior mutability is behind the two
/// `RwLock`ed catalog maps plus the [catalog epoch](Database::catalog_epoch)
/// atomic, queries never hold a lock across execution, and writers
/// (`register`/`drop_table`) swap whole `Arc<Table>`s, so in-flight queries
/// keep the snapshot they planned against.
///
/// Statement-level mutations (`CREATE TABLE`'s existence check, `INSERT`'s
/// clone-push-register) are read-modify-write sequences, not single swaps;
/// they serialize on the dedicated `mutation` mutex so concurrent scripts
/// from different sessions can neither lose rows nor both "create" the
/// same table.
/// One declared secondary index: the key column names, plus the built
/// postings once the lazy build has run. `built` always refers to a batch
/// the scan cache handed out; `Arc::ptr_eq` against the current cached
/// batch is the validity check (exactly the scan-cache revalidation
/// idiom).
struct IndexSlot {
    cols: Vec<String>,
    built: Option<Arc<Index>>,
}

#[derive(Default)]
pub struct Database {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    scan_cache: RwLock<BTreeMap<String, Arc<ColBatch>>>,
    /// Declared secondary indexes per table. Declarations are catalog
    /// state (durable, epoch-bumping); the built postings are a cache,
    /// (re)materialized lazily by [`Database::indexes_by_scan`] and
    /// maintained incrementally by `INSERT`.
    indexes: RwLock<BTreeMap<String, Vec<IndexSlot>>>,
    /// Per-table statistics for the cost-based planner, collected eagerly
    /// on every `register` (so they are never stale relative to the data).
    table_stats: RwLock<BTreeMap<String, Arc<TableStats>>>,
    /// Serializes read-modify-write catalog mutations (`insert`, `CREATE
    /// TABLE`). Plain `register`/`drop_table` are single atomic swaps and
    /// don't need it.
    mutation: Mutex<()>,
    /// Bumped on every catalog mutation (`register`, `drop_table`); plan
    /// and rewrite caches key on this to invalidate stale artifacts.
    epoch: AtomicU64,
    /// Bumped alongside `epoch`, after the stats map is updated: a plan
    /// cache entry stamped with this value was costed against statistics
    /// that are current for that stamp.
    stats_epoch: AtomicU64,
    /// The durable half, when this database was opened with
    /// [`Database::open`]: every catalog mutation is logged to the WAL
    /// before it is applied, and checkpoints snapshot the catalog into
    /// immutable segments. `None` for plain in-memory databases.
    durability: Option<Durability>,
}

/// The shared-session contract: queries run against `&Database` from many
/// threads concurrently.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
};

impl Database {
    pub fn new() -> Database {
        Database::default()
    }

    /// Open a durable database rooted at `dir`: recover the catalog from
    /// the manifest, segments, and WAL tail, then log every subsequent
    /// mutation write-ahead. Recovery tolerates a torn or truncated final
    /// WAL record (the unsynced tail is dropped, never half-applied) and
    /// is idempotent — a crash during recovery or checkpointing recovers
    /// cleanly on the next open.
    pub fn open(dir: &Path, options: DurabilityOptions) -> Result<Database> {
        durable::install_fault_hook();
        let (store, recovered) =
            Store::open(dir, StoreOptions { sync: options.sync }).map_err(durable::storage_err)?;
        let mut db = Database::new();
        // Segments first: each is a full-table snapshot with its stats
        // restored verbatim (annotations are stored columns, so they come
        // back with the rows — nothing is recomputed).
        // Index *declarations* ride along in each snapshot; the postings
        // are deliberately not persisted. Declarations come back unbuilt
        // and the first query that plans against the table rebuilds them
        // lazily, so cold-boot recovery time does not depend on indexes.
        for seg in &recovered.segments {
            let (table, stats, indexes) = durable::decode_snapshot(&seg.payload)?;
            let name = table.name().to_string();
            db.apply_register(table, Arc::new(stats));
            for cols in indexes {
                db.apply_create_index(&name, cols);
            }
        }
        // Epochs as of the checkpoint: serve-layer plan/rewrite caches key
        // on these, so recovery must not restart them from zero (a stale
        // cache entry stamped with a "fresh" epoch would serve old data).
        for (key, value) in &recovered.meta {
            match key.as_str() {
                "catalog_epoch" => db.epoch.store(*value, Ordering::Release),
                "stats_epoch" => db.stats_epoch.store(*value, Ordering::Release),
                _ => {}
            }
        }
        // Then the WAL tail. Each record replays as exactly one apply (one
        // epoch bump), mirroring the original mutation, so the recovered
        // epochs land exactly where they were before the crash.
        for record in &recovered.wal_records {
            db.apply_wal_record(record)?;
        }
        db.durability = Some(Durability {
            store,
            checkpoint_wal_bytes: options.checkpoint_wal_bytes,
        });
        Ok(db)
    }

    /// Whether this database persists mutations (opened via
    /// [`Database::open`]).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// WAL/checkpoint progress for status endpoints; `None` when not
    /// durable.
    pub fn storage_status(&self) -> Option<StoreStatus> {
        self.durability.as_ref().map(|d| d.store.status())
    }

    /// Register (or replace) a table. Bumps the catalog epoch; on a
    /// durable database the full table is logged (as a snapshot record)
    /// before the in-memory swap, so annotation recomputes and bulk loads
    /// survive a crash.
    pub fn register(&self, table: Table) -> Result<()> {
        let _mutation = self.mutation_lock();
        self.register_locked(table)
    }

    /// [`Database::register`] with the mutation mutex already held (the
    /// `INSERT`/`CREATE` paths and recovery hold it across their whole
    /// read-modify-write sequence).
    fn register_locked(&self, table: Table) -> Result<()> {
        let stats = Arc::new(TableStats::collect(table.rows(), table.schema().len()));
        if self.durability.is_some() {
            let decls = self.declared_indexes(table.name());
            self.log(
                KIND_SNAPSHOT,
                &durable::encode_snapshot(&table, &stats, &decls),
            )?;
        }
        self.apply_register(table, stats);
        self.maybe_auto_checkpoint()
    }

    /// Remove a table; returns it if present. Bumps the catalog epoch when
    /// the table existed; logged write-ahead on durable databases.
    pub fn drop_table(&self, name: &str) -> Result<Option<Arc<Table>>> {
        let _mutation = self.mutation_lock();
        if !read_lock(&self.tables).contains_key(name) {
            return Ok(None);
        }
        if self.durability.is_some() {
            self.log(KIND_DROP, &durable::encode_drop(name))?;
        }
        let dropped = self.apply_drop(name);
        self.maybe_auto_checkpoint()?;
        Ok(dropped)
    }

    /// Apply a table swap to the in-memory catalog (no logging — callers
    /// log first).
    ///
    /// Ordering matters: the table swap happens *before* the scan-cache
    /// clear. A concurrent [`Database::table_cols`] miss that read the old
    /// `Arc<Table>` either inserts its rows before the clear (and the clear
    /// wipes them) or revalidates after the swap (and sees the table
    /// changed, so it skips the insert — see `table_cols`). Either way no
    /// pre-swap rows can sit in the scan cache once the new epoch is
    /// observable, which is what lets plan caches trust the epoch check.
    /// Stats are installed before the swap is observable for the same
    /// reason.
    fn apply_register(&self, table: Table, stats: Arc<TableStats>) {
        let name = table.name().to_string();
        write_lock(&self.tables).insert(name.clone(), Arc::new(table));
        write_lock(&self.table_stats).insert(name.clone(), stats);
        write_lock(&self.scan_cache).remove(&name);
        // Unbuild (not undeclare) the table's indexes — their postings
        // describe the replaced data. This must follow the scan-cache
        // clear: a concurrent lazy build revalidates against the cache
        // under the indexes lock, so clearing first guarantees any build
        // it stores afterwards is either over the new batch or wiped here.
        if let Some(slots) = write_lock(&self.indexes).get_mut(&name) {
            for slot in slots.iter_mut() {
                slot.built = None;
            }
        }
        self.stats_epoch.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Apply a drop to the in-memory catalog. Same swap-then-clear
    /// ordering as [`Database::apply_register`].
    fn apply_drop(&self, name: &str) -> Option<Arc<Table>> {
        let dropped = write_lock(&self.tables).remove(name);
        write_lock(&self.table_stats).remove(name);
        write_lock(&self.scan_cache).remove(name);
        // Dropping a table drops its index declarations with it.
        write_lock(&self.indexes).remove(name);
        if dropped.is_some() {
            self.stats_epoch.fetch_add(1, Ordering::Release);
            self.epoch.fetch_add(1, Ordering::Release);
        }
        dropped
    }

    /// Replay one recovered WAL record against the in-memory catalog.
    fn apply_wal_record(&self, record: &WalRecord) -> Result<()> {
        match record.kind {
            KIND_CREATE => {
                let (name, schema) = durable::decode_create(&record.payload)?;
                let cols = ColBatch::from_schema(&schema);
                let table = Table::from_parts(name, schema, cols);
                let stats = Arc::new(TableStats::collect(table.rows(), table.schema().len()));
                self.apply_register(table, stats);
                Ok(())
            }
            KIND_INSERT => {
                let (name, rows) = durable::decode_insert(&record.payload)?;
                let current = self.table(&name).map_err(|_| {
                    EngineError::Storage(format!(
                        "WAL insert into unknown table `{name}` (seq {})",
                        record.seq
                    ))
                })?;
                let mut table = (*current).clone();
                for row in rows {
                    table.push(row)?;
                }
                let stats = Arc::new(TableStats::collect(table.rows(), table.schema().len()));
                self.apply_register(table, stats);
                Ok(())
            }
            KIND_SNAPSHOT => {
                let (table, stats, indexes) = durable::decode_snapshot(&record.payload)?;
                let name = table.name().to_string();
                self.apply_register(table, Arc::new(stats));
                for cols in indexes {
                    self.apply_create_index(&name, cols);
                }
                Ok(())
            }
            KIND_DROP => {
                let name = durable::decode_drop(&record.payload)?;
                self.apply_drop(&name);
                Ok(())
            }
            KIND_INDEX => {
                let (name, cols) = durable::decode_index(&record.payload)?;
                self.apply_create_index(&name, cols);
                Ok(())
            }
            other => Err(EngineError::Storage(format!(
                "unknown WAL record kind {other} (seq {})",
                record.seq
            ))),
        }
    }

    /// Append a record to the WAL (before the matching in-memory apply).
    fn log(&self, kind: u8, payload: &[u8]) -> Result<()> {
        if let Some(d) = &self.durability {
            d.store
                .append(kind, payload)
                .map_err(durable::storage_err)?;
        }
        Ok(())
    }

    /// Checkpoint inline when the WAL has outgrown the configured
    /// threshold. Called with the mutation mutex held, so no mutation can
    /// sit between its WAL append and its in-memory apply while the
    /// checkpoint snapshots the catalog.
    fn maybe_auto_checkpoint(&self) -> Result<()> {
        if let Some(d) = &self.durability {
            if d.checkpoint_wal_bytes > 0 && d.store.wal_bytes() >= d.checkpoint_wal_bytes {
                self.checkpoint_locked()?;
            }
        }
        Ok(())
    }

    /// Write a checkpoint now: every table (with its annotations — they
    /// are stored columns — and its stats) becomes an immutable segment, a
    /// new manifest commits the set atomically, and the WAL restarts
    /// empty. Returns `Ok(false)` on a non-durable database.
    pub fn checkpoint(&self) -> Result<bool> {
        if self.durability.is_none() {
            return Ok(false);
        }
        let _mutation = self.mutation_lock();
        self.checkpoint_locked()?;
        Ok(true)
    }

    /// Checkpoint only if the WAL holds records (the background
    /// checkpointer's cheap periodic call). Returns whether a checkpoint
    /// was written.
    pub fn checkpoint_if_dirty(&self) -> Result<bool> {
        let Some(d) = &self.durability else {
            return Ok(false);
        };
        // 8 bytes = the WAL file magic; anything beyond it is a record.
        if d.store.wal_bytes() <= 8 {
            return Ok(false);
        }
        let _mutation = self.mutation_lock();
        if d.store.wal_bytes() <= 8 {
            return Ok(false);
        }
        self.checkpoint_locked()?;
        Ok(true)
    }

    fn checkpoint_locked(&self) -> Result<()> {
        let Some(d) = &self.durability else {
            return Ok(());
        };
        let tables: Vec<(String, Arc<Table>)> = read_lock(&self.tables)
            .iter()
            .map(|(name, t)| (name.clone(), Arc::clone(t)))
            .collect();
        let stats = read_lock(&self.table_stats).clone();
        let payloads: Vec<(String, Vec<u8>)> = tables
            .iter()
            .map(|(name, table)| {
                let table_stats = stats
                    .get(name)
                    .map(Arc::as_ref)
                    .cloned()
                    .unwrap_or_else(|| TableStats::collect(table.rows(), table.schema().len()));
                let decls = self.declared_indexes(name);
                (
                    name.clone(),
                    durable::encode_snapshot(table, &table_stats, &decls),
                )
            })
            .collect();
        let meta = [
            ("catalog_epoch".to_string(), self.catalog_epoch()),
            ("stats_epoch".to_string(), self.stats_epoch()),
        ];
        d.store
            .checkpoint(&payloads, &meta)
            .map_err(durable::storage_err)
    }

    /// fsync the WAL regardless of sync policy (graceful shutdown). No-op
    /// on non-durable databases.
    pub fn flush(&self) -> Result<()> {
        if let Some(d) = &self.durability {
            d.store.sync().map_err(durable::storage_err)?;
        }
        Ok(())
    }

    /// Tick the `interval_ms` sync policy (the background checkpointer
    /// calls this so the interval holds even without appends).
    pub fn flush_if_due(&self) -> Result<()> {
        if let Some(d) = &self.durability {
            d.store.maybe_sync().map_err(durable::storage_err)?;
        }
        Ok(())
    }

    /// The catalog epoch: a counter bumped on every `register`/`drop_table`.
    /// Cached plans and rewritings are valid only for the epoch they were
    /// built under — plans embed `Arc<Rows>` snapshots of the tables they
    /// scan, so an epoch mismatch means the snapshot may be stale.
    pub fn catalog_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The statistics epoch: bumped with every catalog mutation, after the
    /// stats map has been updated. A plan costed under stats epoch `e` is
    /// only as good as its estimates while `stats_epoch() == e`; plan
    /// caches stamp entries with it so re-costed plans are rebuilt when the
    /// data distribution changes.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch.load(Ordering::Acquire)
    }

    /// Statistics for a table, as collected at its last registration.
    /// `None` for unknown tables.
    pub fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        read_lock(&self.table_stats).get(name).cloned()
    }

    /// Snapshot mapping each cached scan batch (by `Arc<ColBatch>` pointer
    /// identity) to its table's statistics. Plans hold the same `Arc`s the
    /// scan cache handed out, so the cost estimator can recover base-table
    /// stats from a bare `Plan::Scan` node. Tables whose rows were never
    /// scanned have no entry (nothing can reference them from a plan).
    pub(crate) fn stats_by_scan(&self) -> std::collections::HashMap<usize, Arc<TableStats>> {
        let cache = read_lock(&self.scan_cache);
        let stats = read_lock(&self.table_stats);
        cache
            .iter()
            .filter_map(|(name, cols)| {
                stats
                    .get(name)
                    .map(|s| (Arc::as_ptr(cols) as *const () as usize, Arc::clone(s)))
            })
            .collect()
    }

    /// Declare a secondary index on `table` over `cols` (column order
    /// matters: multi-column probes present values in index order).
    /// Returns `Ok(false)` when an identical declaration already exists —
    /// re-declaring is a no-op that bumps nothing.
    ///
    /// The postings are *not* built here. The first query that plans
    /// against the table builds them lazily (see
    /// [`Database::indexes_by_scan`]); the declaration itself is a
    /// durable, epoch-bumping catalog mutation like any other DDL, so
    /// serve-layer plan caches stamped with the old epoch are invalidated.
    pub fn create_index(&self, table: &str, cols: &[&str]) -> Result<bool> {
        let _mutation = self.mutation_lock();
        let t = self.table(table)?;
        for c in cols {
            t.column_index(c)?;
        }
        let col_names: Vec<String> = cols.iter().map(|c| (*c).to_string()).collect();
        if read_lock(&self.indexes)
            .get(table)
            .is_some_and(|slots| slots.iter().any(|s| s.cols == col_names))
        {
            return Ok(false);
        }
        if self.durability.is_some() {
            self.log(KIND_INDEX, &durable::encode_index(table, &col_names))?;
        }
        self.apply_create_index(table, col_names);
        self.maybe_auto_checkpoint()?;
        Ok(true)
    }

    /// Install an index declaration (no logging — callers log first).
    /// Idempotent: an already-declared column list changes nothing and
    /// bumps nothing.
    fn apply_create_index(&self, table: &str, cols: Vec<String>) {
        {
            let mut map = write_lock(&self.indexes);
            let slots = map.entry(table.to_string()).or_default();
            if slots.iter().any(|s| s.cols == cols) {
                return;
            }
            slots.push(IndexSlot { cols, built: None });
        }
        self.stats_epoch.fetch_add(1, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Declared index key-column lists for a table, built or not.
    pub fn declared_indexes(&self, table: &str) -> Vec<Vec<String>> {
        read_lock(&self.indexes)
            .get(table)
            .map(|slots| slots.iter().map(|s| s.cols.clone()).collect())
            .unwrap_or_default()
    }

    /// One row per declared index: `(table, key columns, built)`. `built`
    /// reports whether postings over the table's *current* scan snapshot
    /// exist — after crash recovery this is `false` for every index until
    /// a query plans against the table and triggers the lazy rebuild.
    pub fn index_status(&self) -> Vec<(String, Vec<String>, bool)> {
        let cache = read_lock(&self.scan_cache).clone();
        read_lock(&self.indexes)
            .iter()
            .flat_map(|(table, slots)| {
                slots
                    .iter()
                    .map(|s| {
                        let current = cache.get(table).is_some_and(|b| {
                            s.built.as_ref().is_some_and(|i| Arc::ptr_eq(i.batch(), b))
                        });
                        (table.clone(), s.cols.clone(), current)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Snapshot mapping each cached scan batch (by `Arc<ColBatch>` pointer
    /// identity, exactly like [`Database::stats_by_scan`]) to a built
    /// index over that exact batch. Declared-but-unbuilt indexes are built
    /// here — this is the lazy (re)build point that keeps crash recovery
    /// and `INSERT` cheap. A failed build (`index_build_fail` fault, a
    /// re-registered table that lost the key column) is not an error: the
    /// table simply plans as a sequential scan.
    pub(crate) fn indexes_by_scan(&self) -> std::collections::HashMap<usize, Arc<Index>> {
        let names: Vec<String> = {
            let idxs = read_lock(&self.indexes);
            if idxs.is_empty() {
                return std::collections::HashMap::new();
            }
            idxs.keys().cloned().collect()
        };
        let targets: Vec<(String, Arc<ColBatch>)> = {
            let cache = read_lock(&self.scan_cache);
            names
                .into_iter()
                .filter_map(|n| cache.get(&n).map(|b| (n, Arc::clone(b))))
                .collect()
        };
        let mut out = std::collections::HashMap::new();
        for (name, batch) in targets {
            if let Some(idx) = self.index_over(&name, &batch) {
                out.insert(Arc::as_ptr(&batch) as *const () as usize, idx);
            }
        }
        out
    }

    /// A built index over exactly `batch`: the already-built slot when its
    /// postings match this batch, otherwise the first declaration that
    /// builds successfully. Build time lands in the `index.build.us`
    /// histogram; a failed build bumps `index.fallback` and the caller
    /// falls back to a sequential scan.
    fn index_over(&self, name: &str, batch: &Arc<ColBatch>) -> Option<Arc<Index>> {
        let decls: Vec<(Vec<String>, Option<Arc<Index>>)> = read_lock(&self.indexes)
            .get(name)?
            .iter()
            .map(|s| (s.cols.clone(), s.built.clone()))
            .collect();
        for (_, built) in &decls {
            if let Some(b) = built {
                if Arc::ptr_eq(b.batch(), batch) {
                    return Some(Arc::clone(b));
                }
            }
        }
        let table = self.table(name).ok()?;
        for (cols, _) in decls {
            let Ok(positions) = cols
                .iter()
                .map(|c| table.column_index(c))
                .collect::<Result<Vec<_>>>()
            else {
                continue;
            };
            let start = std::time::Instant::now();
            match Index::build(name, &cols, positions, batch) {
                Ok(idx) => {
                    conquer_obs::registry()
                        .histogram("index.build.us")
                        .record(start.elapsed().as_micros() as u64);
                    conquer_obs::registry().counter("index.build").inc();
                    let idx = Arc::new(idx);
                    // Cache the build only while this batch is still the
                    // table's scan snapshot (the scan-cache revalidation
                    // idiom); either way the caller gets the index for the
                    // plan it is building right now, which holds `batch`.
                    // `apply_register` clears the scan cache *before*
                    // unbuilding slots, so a store that passes this check
                    // and then loses the race is wiped by the unbuild.
                    let mut map = write_lock(&self.indexes);
                    let still_current = read_lock(&self.scan_cache)
                        .get(name)
                        .is_some_and(|cur| Arc::ptr_eq(cur, batch));
                    if still_current {
                        if let Some(slot) = map
                            .get_mut(name)
                            .and_then(|slots| slots.iter_mut().find(|s| s.cols == cols))
                        {
                            slot.built = Some(Arc::clone(&idx));
                        }
                    }
                    return Some(idx);
                }
                Err(_) => {
                    conquer_obs::registry().counter("index.fallback").inc();
                }
            }
        }
        None
    }

    /// Shared handle to a table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        read_lock(&self.tables)
            .get(name)
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Names of all registered tables.
    pub fn table_names(&self) -> Vec<String> {
        read_lock(&self.tables).keys().cloned().collect()
    }

    /// The columns of a table as a shared, scan-ready batch (cached until
    /// the table is re-registered). The batch shares the table's column
    /// chunks — mutation on the table copy-on-writes them, so the handle
    /// is a stable snapshot.
    pub(crate) fn table_cols(&self, name: &str) -> Result<Arc<ColBatch>> {
        if let Some(cached) = read_lock(&self.scan_cache).get(name) {
            return Ok(Arc::clone(cached));
        }
        let table = self.table(name)?;
        let cols = Arc::new(table.batch());
        // Cache only after revalidating, under the cache write lock, that
        // `table` is still the registered Arc. Without this, a `register`
        // racing between our miss and our insert could clear the cache and
        // then have the old rows re-inserted *after* the clear, leaving
        // stale rows live under the new epoch. The check-and-insert is one
        // critical section, so it fully precedes or fully follows
        // `register`'s clear: before, the clear wipes it; after, the table
        // swap (ordered before the clear) is visible and the ptr_eq check
        // fails. Nesting the tables read lock inside the cache write lock
        // is deadlock-free — no writer holds both locks at once.
        let mut cache = write_lock(&self.scan_cache);
        let still_current = read_lock(&self.tables)
            .get(name)
            .is_some_and(|current| Arc::ptr_eq(current, &table));
        if still_current {
            cache.insert(name.to_string(), Arc::clone(&cols));
        }
        Ok(cols)
    }

    /// Run a SQL query string with default options.
    pub fn query(&self, sql: &str) -> Result<Rows> {
        self.query_with(sql, &ExecOptions::default())
    }

    /// Run a SQL query string with explicit options. One governor covers
    /// parse → plan (CTE materialization included) → execute, so the
    /// wall-clock budget in [`ResourceLimits`](crate::ResourceLimits) is
    /// end-to-end.
    pub fn query_with(&self, sql: &str, options: &ExecOptions) -> Result<Rows> {
        let _trace = options.trace.as_ref().map(|t| t.install());
        let gov = Governor::for_options(options);
        let query = {
            let _span = conquer_obs::span("parse").field("bytes", sql.len());
            parse_query(sql)?
        };
        self.execute_query_opts(&query, options, gov.as_ref())
    }

    /// Run a parsed query with default options.
    pub fn execute_query(&self, query: &Query) -> Result<Rows> {
        self.execute_query_with(query, &ExecOptions::default())
    }

    /// Run a parsed query with explicit options.
    pub fn execute_query_with(&self, query: &Query, options: &ExecOptions) -> Result<Rows> {
        let _trace = options.trace.as_ref().map(|t| t.install());
        let gov = Governor::for_options(options);
        self.execute_query_opts(query, options, gov.as_ref())
    }

    fn execute_query_opts(
        &self,
        query: &Query,
        options: &ExecOptions,
        gov: Option<&Governor>,
    ) -> Result<Rows> {
        let plan = self.plan_governed(query, options, gov)?;
        let mut span = conquer_obs::span("execute").field("threads", options.threads);
        let rows =
            exec::execute_columnar_threads(&plan, None, gov, options.threads, options.columnar)?
                .into_rows();
        span.record("rows", rows.rows.len());
        Ok(rows)
    }

    /// Run a parsed query, collecting per-operator runtime stats
    /// (`EXPLAIN ANALYZE` without the formatting).
    pub fn execute_query_traced(
        &self,
        query: &Query,
        options: &ExecOptions,
    ) -> Result<(Rows, Plan, crate::stats::NodeStats)> {
        let _trace = options.trace.as_ref().map(|t| t.install());
        let gov = Governor::for_options(options);
        let plan = self.plan_governed(query, options, gov.as_ref())?;
        let mut span = conquer_obs::span("execute").field("threads", options.threads);
        let (rows, mut stats) = exec::execute_traced_threads(
            &plan,
            None,
            gov.as_ref(),
            options.threads,
            options.columnar,
        )?;
        span.record("rows", rows.rows.len());
        if options.use_stats {
            let est = self.estimator_for(options);
            crate::cost::annotate(&est, &plan, &mut stats);
        }
        Ok((rows, plan, stats))
    }

    /// Plan a query without executing it (CTEs are still materialized, under
    /// the options' resource budget).
    pub fn plan(&self, query: &Query, options: &ExecOptions) -> Result<Plan> {
        let _trace = options.trace.as_ref().map(|t| t.install());
        let gov = Governor::for_options(options);
        self.plan_governed(query, options, gov.as_ref())
    }

    /// Execute an already-built plan under the given options. This is the
    /// entry point for plan caches (`conquer-serve`): the plan embeds the
    /// table snapshots it was built against, so callers must validate the
    /// [catalog epoch](Database::catalog_epoch) before reusing a plan. The
    /// options' resource budget and cancellation token cover execution
    /// only — parse and plan time were paid when the plan was built.
    pub fn execute_plan_with(&self, plan: &Plan, options: &ExecOptions) -> Result<Rows> {
        let _trace = options.trace.as_ref().map(|t| t.install());
        let gov = Governor::for_options(options);
        let mut span = conquer_obs::span("execute").field("threads", options.threads);
        let rows = exec::execute_columnar_threads(
            plan,
            None,
            gov.as_ref(),
            options.threads,
            options.columnar,
        )?
        .into_rows();
        span.record("rows", rows.rows.len());
        Ok(rows)
    }

    fn plan_governed(
        &self,
        query: &Query,
        options: &ExecOptions,
        gov: Option<&Governor>,
    ) -> Result<Plan> {
        let plan = {
            let _span = conquer_obs::span("plan")
                .field("materialize_ctes", options.materialize_ctes)
                .field("pushdown", options.pushdown_filters);
            Planner::with_governor(self, options, gov).plan_query(query)?
        };
        Ok(if options.pushdown_filters {
            let _span = conquer_obs::span("optimize");
            if options.use_stats {
                let est = self.estimator_for(options);
                crate::opt::optimize_with(plan, Some(&est))
            } else {
                crate::opt::optimize(plan)
            }
        } else {
            plan
        })
    }

    /// The cost estimator for one planning pass. With `use_indexes` (and
    /// `use_stats`) on, built secondary indexes become visible as
    /// access-path candidates; off, the estimator is index-blind and the
    /// planner produces exactly the pre-index plans — the differential
    /// testing oracle.
    fn estimator_for(&self, options: &ExecOptions) -> crate::cost::Estimator<'_> {
        if options.use_indexes {
            crate::cost::Estimator::from_db_with_indexes(self)
        } else {
            crate::cost::Estimator::from_db(self)
        }
    }

    /// The operator tree a SQL query plans to, as an indented listing.
    ///
    /// CTEs are materialized during planning (as at execution time), so the
    /// printed tree is exactly what [`Database::query`] would run.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.explain_with(sql, &ExecOptions::default())
    }

    /// [`Database::explain`] under explicit options.
    pub fn explain_with(&self, sql: &str, options: &ExecOptions) -> Result<String> {
        let query = parse_query(sql)?;
        let plan = self.plan(&query, options)?;
        if options.use_stats {
            let est = self.estimator_for(options);
            let mut stats = crate::stats::NodeStats::for_plan(&plan);
            crate::cost::annotate(&est, &plan, &mut stats);
            Ok(crate::explain::explain_estimated(&plan, &stats))
        } else {
            Ok(crate::explain::explain(&plan))
        }
    }

    /// Run a SQL query and return its rows together with the plan listing
    /// annotated with measured per-operator stats.
    pub fn explain_analyze(&self, sql: &str) -> Result<(Rows, String)> {
        self.explain_analyze_with(sql, &ExecOptions::default())
    }

    /// [`Database::explain_analyze`] under explicit options.
    pub fn explain_analyze_with(&self, sql: &str, options: &ExecOptions) -> Result<(Rows, String)> {
        let query = {
            let _span = conquer_obs::span("parse").field("bytes", sql.len());
            parse_query(sql)?
        };
        let (rows, plan, stats) = self.execute_query_traced(&query, options)?;
        let text = crate::explain::explain_analyze(&plan, &stats);
        Ok((rows, text))
    }

    /// Execute a `;`-separated script of statements (`CREATE TABLE`,
    /// `INSERT`, `DROP TABLE`, `CREATE INDEX`, queries). Returns the
    /// result of the last query, if any.
    pub fn run_script(&self, sql: &str) -> Result<Option<Rows>> {
        let mut last = None;
        for stmt in parse_statements(sql)? {
            last = self.run_statement(&stmt)?;
        }
        Ok(last)
    }

    /// Execute one parsed statement.
    pub fn run_statement(&self, stmt: &Statement) -> Result<Option<Rows>> {
        match stmt {
            Statement::Query(q) => Ok(Some(self.execute_query(q)?)),
            Statement::CreateTable { name, columns } => {
                let _mutation = self.mutation_lock();
                if read_lock(&self.tables).contains_key(name) {
                    return Err(EngineError::Catalog(format!(
                        "table `{name}` already exists"
                    )));
                }
                let cols: Vec<(&str, DataType)> = columns
                    .iter()
                    .map(|c| (c.name.as_str(), DataType::from(c.ty)))
                    .collect();
                let table = Table::new(name.clone(), cols);
                if self.durability.is_some() {
                    self.log(KIND_CREATE, &durable::encode_create(name, table.schema()))?;
                }
                let stats = Arc::new(TableStats::collect(table.rows(), table.schema().len()));
                self.apply_register(table, stats);
                self.maybe_auto_checkpoint()?;
                Ok(None)
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                self.insert(table, columns, rows)?;
                Ok(None)
            }
            Statement::DropTable { name } => {
                self.drop_table(name)?;
                Ok(None)
            }
            Statement::CreateIndex { table, columns } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.create_index(table, &cols)?;
                Ok(None)
            }
        }
    }

    fn mutation_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.mutation.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn insert(&self, name: &str, columns: &[String], rows: &[Vec<Expr>]) -> Result<()> {
        // INSERT is clone-push-register; hold the mutation mutex across the
        // whole sequence so a concurrent INSERT can't clone the same base
        // table and silently drop this one's rows on register.
        let _mutation = self.mutation_lock();
        let current = self.table(name)?;
        let mut new_table = (*current).clone();
        let n_cols = new_table.schema().len();
        // Map provided columns to positions (all columns when unspecified).
        let positions: Vec<usize> = if columns.is_empty() {
            (0..n_cols).collect()
        } else {
            columns
                .iter()
                .map(|c| new_table.column_index(c))
                .collect::<Result<Vec<_>>>()?
        };
        for exprs in rows {
            if exprs.len() != positions.len() {
                return Err(EngineError::Catalog(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    exprs.len()
                )));
            }
            let mut row: Row = vec![Value::Null; n_cols];
            for (pos, expr) in positions.iter().zip(exprs) {
                row[*pos] = eval_const(expr)?;
            }
            new_table.push(row)?;
        }
        if self.durability.is_some() {
            // Log only the newly appended rows, not the whole table: the
            // base rows are already covered by earlier records/segments.
            let appended = &new_table.rows()[current.len()..];
            self.log(KIND_INSERT, &durable::encode_insert(name, appended))?;
        }
        let stats = Arc::new(TableStats::collect(
            new_table.rows(),
            new_table.schema().len(),
        ));
        // Built indexes describe the pre-insert batch; capture them before
        // the register unbuilds the slots so they can be extended (rather
        // than rebuilt) over the appended rows. Sound because the mutation
        // mutex is held: the new table is exactly the old rows plus the
        // appended suffix, which is `Index::extended`'s contract.
        let old_built: Vec<Arc<Index>> = read_lock(&self.indexes)
            .get(name)
            .map(|slots| slots.iter().filter_map(|s| s.built.clone()).collect())
            .unwrap_or_default();
        self.apply_register(new_table, stats);
        if !old_built.is_empty() {
            if let Ok(new_batch) = self.table_cols(name) {
                let mut map = write_lock(&self.indexes);
                if let Some(slots) = map.get_mut(name) {
                    for slot in slots.iter_mut() {
                        if let Some(ext) = old_built
                            .iter()
                            .find(|i| i.col_names() == slot.cols.as_slice())
                            .and_then(|i| i.extended(&new_batch))
                        {
                            slot.built = Some(Arc::new(ext));
                        }
                    }
                }
            }
        }
        self.maybe_auto_checkpoint()?;
        Ok(())
    }
}

/// Evaluate a constant expression (INSERT values).
fn eval_const(expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(l) => Ok(literal_value(l)),
        Expr::UnaryOp {
            op: conquer_sql::UnaryOp::Neg,
            expr,
        } => match eval_const(expr)? {
            Value::Int(v) => {
                Ok(Value::Int(v.checked_neg().ok_or_else(|| {
                    EngineError::Eval("integer overflow in negation".into())
                })?))
            }
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(EngineError::TypeError(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        _ => Err(EngineError::Unsupported(
            "INSERT values must be literal constants".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_insert_select_roundtrip() {
        let db = Database::new();
        db.run_script(
            "create table t (a integer, b text);
             insert into t values (1, 'x'), (2, 'y');",
        )
        .unwrap();
        let rows = db.query("select a from t where b = 'y'").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn duplicate_create_fails() {
        let db = Database::new();
        db.run_script("create table t (a integer)").unwrap();
        assert!(db.run_script("create table t (a integer)").is_err());
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let db = Database::new();
        db.run_script("create table t (a integer, b integer)")
            .unwrap();
        db.run_script("insert into t (b) values (7)").unwrap();
        let rows = db.query("select a, b from t").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Null, Value::Int(7)]]);
    }

    #[test]
    fn unknown_table_error() {
        let db = Database::new();
        let err = db.query("select * from nope").unwrap_err();
        assert!(matches!(err, EngineError::UnknownTable(_)));
    }

    #[test]
    fn catalog_epoch_tracks_mutations() {
        let db = Database::new();
        let e0 = db.catalog_epoch();
        db.run_script("create table t (a integer)").unwrap();
        let e1 = db.catalog_epoch();
        assert!(e1 > e0);
        // INSERT re-registers the table, so it bumps the epoch too.
        db.run_script("insert into t values (1)").unwrap();
        let e2 = db.catalog_epoch();
        assert!(e2 > e1);
        // Dropping a missing table is not a mutation.
        assert!(db.drop_table("nope").unwrap().is_none());
        assert_eq!(db.catalog_epoch(), e2);
        db.drop_table("t").unwrap();
        assert!(db.catalog_epoch() > e2);
    }

    #[test]
    fn cached_plan_reexecutes() {
        let db = Database::new();
        db.run_script("create table t (a integer); insert into t values (1), (2)")
            .unwrap();
        let query = conquer_sql::parse_query("select a from t where a > 1").unwrap();
        let options = ExecOptions::default();
        let plan = db.plan(&query, &options).unwrap();
        let first = db.execute_plan_with(&plan, &options).unwrap();
        let second = db.execute_plan_with(&plan, &options).unwrap();
        assert_eq!(first.rows, vec![vec![Value::Int(2)]]);
        assert_eq!(first, second);
    }

    #[test]
    fn concurrent_inserts_do_not_lose_rows() {
        let db = Database::new();
        db.run_script("create table t (a integer)").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        db.run_script("insert into t values (1)").unwrap();
                    }
                });
            }
        });
        let rows = db.query("select count(*) from t").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(200)]]);
    }

    #[test]
    fn concurrent_create_table_has_one_winner() {
        let db = Database::new();
        let successes: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(|| db.run_script("create table t (a integer)").is_ok()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|ok| *ok)
                .count()
        });
        assert_eq!(successes, 1, "exactly one CREATE must win");
        assert_eq!(db.table_names(), vec!["t".to_string()]);
    }

    /// Stress the `register` vs `table_rows` race: rows read while the
    /// epoch is stable must never be older than that epoch (a stale
    /// scan-cache entry surviving a `register` would violate this and make
    /// epoch-checked plan caches serve old data).
    #[test]
    fn scan_cache_never_lags_a_stable_epoch() {
        const VERSIONS: u64 = 1000;
        let db = Database::new();
        db.run_script("create table t (a integer); insert into t values (0)")
            .unwrap();
        let e0 = db.catalog_epoch(); // version 0 is current at e0
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 1..=VERSIONS {
                    let mut table = Table::new("t".to_string(), vec![("a", DataType::Integer)]);
                    table.push(vec![Value::Int(i as i64)]).unwrap();
                    db.register(table).unwrap();
                }
            });
            scope.spawn(|| loop {
                let before = db.catalog_epoch();
                let rows = db.table_cols("t").unwrap();
                let after = db.catalog_epoch();
                if before == after {
                    // Version (before - e0) registered at epoch `before`;
                    // seeing anything older means the cache served stale
                    // rows under this epoch. (Fresher is fine: the writer
                    // may already have swapped without us observing the
                    // bump yet.)
                    let expect = (before - e0) as i64;
                    let got = match rows.rows()[0][0] {
                        Value::Int(v) => v,
                        ref other => panic!("unexpected value {other:?}"),
                    };
                    assert!(
                        got >= expect,
                        "scan cache served version {got} at stable epoch {before} \
                         (expected at least {expect})"
                    );
                }
                if after >= e0 + VERSIONS {
                    return;
                }
            });
        });
    }

    #[test]
    fn insert_negative_values() {
        let db = Database::new();
        db.run_script("create table t (a integer); insert into t values (-5)")
            .unwrap();
        let rows = db.query("select a from t").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(-5)]]);
    }
}
