//! Deterministic fault injection for executor robustness tests.
//!
//! Named fault points sit at the allocation/build/probe/materialize sites
//! of every physical operator. With the `fault-injection` cargo feature
//! disabled (the default), [`trip`] is a no-op that compiles away. With the
//! feature enabled, a thread-local schedule can arm individual points
//! ([`arm`]) or a seeded pseudo-random schedule over all points
//! ([`arm_seeded`]), so tests can prove that every operator propagates an
//! injected failure as a structured `Err` — never a panic — and that the
//! `Database` stays usable afterwards.
//!
//! The schedule is thread-local and fully deterministic (a xorshift64*
//! generator for the seeded mode), so failures reproduce exactly.

use crate::error::Result;

/// Every named fault point, in the order operators appear in the executor.
/// Tests iterate this list to prove exhaustive coverage.
pub const POINTS: &[&str] = &[
    "scan",
    "filter",
    "project",
    "rename",
    "join.build",
    "join.probe",
    "nested_loop",
    "aggregate.group",
    "distinct",
    "union",
    "sort",
    "limit",
    "cte.materialize",
    // Secondary-index construction (`Index::build`). Unlike the operator
    // points above, an armed failure here does not surface as a query
    // error: the planner falls back to a SeqScan access path and the query
    // still answers correctly.
    "index_build_fail",
    // WAL/checkpoint layer (tripped inside `conquer-storage` via the
    // process-global hook installed on the first durable open).
    "wal_append_io",
    "wal_sync_fail",
    "segment_write_torn",
    "manifest_rename_fail",
];

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::Result;

    /// Fault point (disabled build): always succeeds, compiles to nothing.
    #[inline(always)]
    pub fn trip(_point: &'static str) -> Result<()> {
        Ok(())
    }
}

#[cfg(feature = "fault-injection")]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;

    use super::Result;
    use crate::error::EngineError;

    #[derive(Default)]
    struct Schedule {
        /// point -> remaining hits before it fires (0 = fire on next hit).
        armed: HashMap<&'static str, u64>,
        /// Points that fire on *every* hit until disarmed — for degradation
        /// points that are retried within one operation (lazy index builds
        /// are attempted once per estimator construction, so a one-shot
        /// arming can be consumed before the plan is final).
        every: std::collections::HashSet<&'static str>,
        /// Seeded mode: xorshift64* state and the 1-in-N firing rate.
        seeded: Option<(u64, u64)>,
        /// Total times each point was reached (armed or not).
        hits: HashMap<&'static str, u64>,
    }

    thread_local! {
        static SCHEDULE: RefCell<Schedule> = RefCell::new(Schedule::default());
    }

    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Arm one fault point on this thread: it fires (returns `Err`) on the
    /// `(after + 1)`-th time it is reached, then disarms itself.
    pub fn arm(point: &'static str, after: u64) {
        SCHEDULE.with(|s| {
            s.borrow_mut().armed.insert(point, after);
        });
    }

    /// Arm one fault point to fire on *every* hit until [`disarm_all`].
    pub fn arm_every(point: &'static str) {
        SCHEDULE.with(|s| {
            s.borrow_mut().every.insert(point);
        });
    }

    /// Arm a seeded pseudo-random schedule over *all* points: each hit
    /// fires with probability 1-in-`one_in`, deterministically per seed.
    pub fn arm_seeded(seed: u64, one_in: u64) {
        SCHEDULE.with(|s| {
            s.borrow_mut().seeded = Some((seed.max(1), one_in.max(1)));
        });
    }

    /// Clear every armed point and the seeded schedule; hit counters reset
    /// too.
    pub fn disarm_all() {
        SCHEDULE.with(|s| {
            *s.borrow_mut() = Schedule::default();
        });
    }

    /// How many times `point` has been reached since the last
    /// [`disarm_all`].
    pub fn hits(point: &str) -> u64 {
        SCHEDULE.with(|s| s.borrow().hits.get(point).copied().unwrap_or(0))
    }

    fn injected(point: &'static str) -> EngineError {
        EngineError::Execution(format!("injected fault at `{point}`"))
    }

    /// Fault point (enabled build): records the hit and fires when the
    /// schedule says so.
    pub fn trip(point: &'static str) -> Result<()> {
        SCHEDULE.with(|s| {
            let mut s = s.borrow_mut();
            *s.hits.entry(point).or_insert(0) += 1;
            if s.every.contains(point) {
                return Err(injected(point));
            }
            if let Some(remaining) = s.armed.get_mut(point) {
                if *remaining == 0 {
                    s.armed.remove(point);
                    return Err(injected(point));
                }
                *remaining -= 1;
            }
            if let Some((state, one_in)) = &mut s.seeded {
                if xorshift(state) % *one_in == 0 {
                    return Err(injected(point));
                }
            }
            Ok(())
        })
    }
}

pub use imp::trip;

#[cfg(feature = "fault-injection")]
pub use imp::{arm, arm_every, arm_seeded, disarm_all, hits};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn armed_point_fires_once_then_disarms() {
        disarm_all();
        arm("scan", 1);
        assert!(trip("scan").is_ok()); // 1st hit: countdown
        assert!(trip("scan").is_err()); // 2nd hit: fires
        assert!(trip("scan").is_ok()); // disarmed again
        assert_eq!(hits("scan"), 3);
        disarm_all();
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        disarm_all();
        arm_seeded(42, 3);
        let a: Vec<bool> = (0..32).map(|_| trip("filter").is_err()).collect();
        disarm_all();
        arm_seeded(42, 3);
        let b: Vec<bool> = (0..32).map(|_| trip("filter").is_err()).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|f| *f), "1-in-3 over 32 hits should fire");
        disarm_all();
    }
}
