//! SQL pretty-printer: `Display` implementations for every AST node.
//!
//! The printer emits canonical SQL that round-trips through the parser.
//! Parentheses are inserted based on operator precedence, so programmatically
//! constructed trees (such as ConQuer's rewritings) print unambiguously.

use std::fmt::{self, Display, Formatter, Write as _};

use crate::ast::*;
use crate::dates;

impl Display for Literal {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Boolean(true) => f.write_str("TRUE"),
            Literal::Boolean(false) => f.write_str("FALSE"),
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // Keep a decimal point so the literal round-trips as Float.
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Literal::Date(d) => write!(f, "DATE '{}'", dates::format_date(*d)),
        }
    }
}

impl Display for ColumnRef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write!(f, "{}.", ident(q))?;
        }
        f.write_str(&ident(&self.name))
    }
}

/// Quote an identifier when it would not re-lex as a bare identifier
/// (uppercase letters, punctuation, or a reserved keyword).
fn ident(name: &str) -> String {
    let bare = name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !crate::ast::is_reserved_word(name);
    if bare {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

impl Display for BinaryOp {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        })
    }
}

/// Binding strength, matching the parser's precedence ladder.
fn precedence(op: BinaryOp) -> u8 {
    use BinaryOp::*;
    match op {
        Or => 1,
        And => 2,
        Eq | NotEq | Lt | LtEq | Gt | GtEq => 4,
        Plus | Minus => 5,
        Multiply | Divide | Modulo => 6,
    }
}

/// Precedence of an expression node for parenthesization decisions.
fn expr_precedence(e: &Expr) -> u8 {
    match e {
        Expr::BinaryOp { op, .. } => precedence(*op),
        Expr::UnaryOp {
            op: UnaryOp::Not, ..
        } => 3,
        // Predicate forms parse at comparison level.
        Expr::IsNull { .. }
        | Expr::Between { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Like { .. } => 4,
        Expr::UnaryOp {
            op: UnaryOp::Neg, ..
        } => 7,
        _ => 8,
    }
}

fn fmt_child(f: &mut Formatter<'_>, child: &Expr, min_prec: u8) -> fmt::Result {
    if expr_precedence(child) < min_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl Display for Expr {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::BinaryOp { left, op, right } => {
                let prec = precedence(*op);
                // Comparisons do not chain in the grammar (`a = b = c` and
                // `a IS NULL <= b` are unparseable), so their operands must
                // sit strictly above predicate level.
                let (lmin, rmin) = if op.is_comparison() {
                    (prec + 1, prec + 1)
                } else {
                    // Right child needs strictly higher precedence to avoid
                    // reassociation of non-associative operators (`-`, `/`).
                    (prec, prec + 1)
                };
                fmt_child(f, left, lmin)?;
                write!(f, " {op} ")?;
                fmt_child(f, right, rmin)
            }
            Expr::UnaryOp {
                op: UnaryOp::Not,
                expr,
            } => {
                f.write_str("NOT ")?;
                fmt_child(f, expr, 4)
            }
            Expr::UnaryOp {
                op: UnaryOp::Neg,
                expr,
            } => {
                f.write_str("-")?;
                fmt_child(f, expr, 8)
            }
            Expr::IsNull { expr, negated } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                })?;
                fmt_child(f, low, 5)?;
                f.write_str(" AND ")?;
                fmt_child(f, high, 5)
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                fmt_comma_list(f, list)?;
                f.write_str(")")
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                write!(f, "{subquery})")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                fmt_child(f, expr, 5)?;
                f.write_str(if *negated { " NOT LIKE " } else { " LIKE " })?;
                fmt_child(f, pattern, 5)
            }
            Expr::Exists { subquery, negated } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({subquery})")
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Case {
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                for (cond, value) in branches {
                    write!(f, " WHEN {cond} THEN {value}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{}(", name.to_ascii_lowercase())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                fmt_comma_list(f, args)?;
                f.write_str(")")
            }
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

fn fmt_comma_list<T: Display>(f: &mut Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl Display for SelectItem {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Expr {
                expr,
                alias: Some(a),
            } => write!(f, "{expr} AS {}", ident(a)),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{}.*", ident(q)),
        }
    }
}

impl Display for TableRef {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                f.write_str(&ident(name))?;
                if let Some(a) = alias {
                    write!(f, " {}", ident(a))?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => write!(f, "({query}) {}", ident(alias)),
            TableRef::Join {
                left,
                kind,
                right,
                on,
            } => {
                write!(f, "{left}")?;
                f.write_str(match kind {
                    JoinKind::Inner => " JOIN ",
                    JoinKind::LeftOuter => " LEFT OUTER JOIN ",
                    JoinKind::Cross => " CROSS JOIN ",
                })?;
                // Parenthesize a join on the right side to preserve shape.
                if matches!(**right, TableRef::Join { .. }) {
                    write!(f, "({right})")?;
                } else {
                    write!(f, "{right}")?;
                }
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl Display for Select {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        fmt_comma_list(f, &self.projection)?;
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            fmt_comma_list(f, &self.from)?;
        }
        if let Some(w) = &self.selection {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            fmt_comma_list(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        Ok(())
    }
}

impl Display for SetExpr {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            SetExpr::Select(s) => write!(f, "{s}"),
            SetExpr::UnionAll(l, r) => write!(f, "{l} UNION ALL {r}"),
        }
    }
}

impl Display for Query {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        if !self.ctes.is_empty() {
            f.write_str("WITH ")?;
            for (i, cte) in self.ctes.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{} AS ({})", ident(&cte.name), cte.query)?;
            }
            f.write_char(' ')?;
        }
        write!(f, "{}", self.body)?;
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, item) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}", item.expr)?;
                if item.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl Display for TypeName {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeName::Integer => "INTEGER",
            TypeName::Float => "FLOAT",
            TypeName::Text => "TEXT",
            TypeName::Date => "DATE",
            TypeName::Boolean => "BOOLEAN",
        })
    }
}

impl Display for Statement {
    fn fmt(&self, f: &mut Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Query(q) => write!(f, "{q}"),
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {} (", ident(name))?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} {}", ident(&c.name), c.ty)?;
                }
                f.write_str(")")
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                write!(f, "INSERT INTO {}", ident(table))?;
                if !columns.is_empty() {
                    f.write_str(" (")?;
                    for (i, c) in columns.iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        f.write_str(&ident(c))?;
                    }
                    f.write_str(")")?;
                }
                f.write_str(" VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    fmt_comma_list(f, row)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {}", ident(name)),
            Statement::CreateIndex { table, columns } => {
                write!(f, "CREATE INDEX ON {} (", ident(table))?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(&ident(c))?;
                }
                f.write_str(")")
            }
        }
    }
}
