//! Abstract syntax tree for the ConQuer SQL dialect.
//!
//! The tree is deliberately close to the grammar of the paper's Figures 3–8:
//! queries with `WITH` clauses, select blocks combined by `UNION ALL`,
//! comma- and `JOIN`-style `FROM` clauses, and expressions covering the
//! predicates of tree queries plus everything the rewritings emit
//! (`NOT EXISTS`, `IS NULL`, `CASE`, aggregate calls).
//!
//! All identifiers are stored lower-cased (SQL identifiers are
//! case-insensitive in this dialect; quoted identifiers preserve case).

use crate::dates;

/// A literal value appearing in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Null,
    Boolean(bool),
    /// Integer literal; also used for exact money-style values scaled by the caller.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal.
    String(String),
    /// `DATE 'YYYY-MM-DD'`, stored as days since 1970-01-01.
    Date(i32),
}

impl Literal {
    /// Convenience constructor parsing a `YYYY-MM-DD` date string.
    ///
    /// # Panics
    /// Panics when the string is not a valid date; intended for trusted
    /// (programmatic) construction sites such as tests and the rewriter.
    pub fn date(s: &str) -> Literal {
        Literal::Date(dates::parse_date(s).unwrap_or_else(|| panic!("invalid date literal {s:?}")))
    }
}

/// A possibly-qualified column reference such as `c.custkey` or `acctbal`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table name or alias qualifier, when written.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    pub fn new(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }
}

/// Binary operators, in SQL surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    /// `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        use BinaryOp::*;
        matches!(self, Eq | NotEq | Lt | LtEq | Gt | GtEq)
    }

    /// The comparison with reversed truth value, e.g. `<` becomes `>=`.
    ///
    /// Used by the rewriter to build `NSC`, the negation of the selection
    /// conditions (Figure 5 of the paper). Returns `None` for non-comparison
    /// operators.
    pub fn negated_comparison(self) -> Option<BinaryOp> {
        use BinaryOp::*;
        Some(match self {
            Eq => NotEq,
            NotEq => Eq,
            Lt => GtEq,
            LtEq => Gt,
            Gt => LtEq,
            GtEq => Lt,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal constant.
    Literal(Literal),
    /// Binary operation (arithmetic, comparison, `AND`/`OR`).
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    /// Unary operation (`NOT`, unary minus).
    UnaryOp { op: UnaryOp, expr: Box<Expr> },
    /// `expr IS [NOT] NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (subquery)`.
    InSubquery {
        expr: Box<Expr>,
        subquery: Box<Query>,
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (pattern is `%`/`_` wildcards).
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    /// `[NOT] EXISTS (subquery)`.
    Exists { subquery: Box<Query>, negated: bool },
    /// Scalar subquery `(select ...)` used as a value.
    ScalarSubquery(Box<Query>),
    /// Searched `CASE WHEN c THEN v ... [ELSE e] END`.
    Case {
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// Function call: aggregates (`SUM`, `MIN`, `MAX`, `COUNT`, `AVG`) and
    /// scalar functions (`ABS`, `COALESCE`, ...).
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `*` — only valid inside `COUNT(*)` or `SELECT *`/`EXISTS(SELECT *)`.
    Wildcard,
}

impl Expr {
    pub fn col(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(qualifier, name))
    }

    pub fn bare_col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    pub fn lit(l: Literal) -> Expr {
        Expr::Literal(l)
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    pub fn string(s: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(s.into()))
    }

    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(left),
            op,
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Eq, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::And, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(left, BinaryOp::Or, right)
    }

    /// Logical negation (named `not` to mirror SQL; distinct from `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(expr: Expr) -> Expr {
        Expr::UnaryOp {
            op: UnaryOp::Not,
            expr: Box::new(expr),
        }
    }

    pub fn is_null(expr: Expr) -> Expr {
        Expr::IsNull {
            expr: Box::new(expr),
            negated: false,
        }
    }

    pub fn func(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Function {
            name: name.into(),
            args,
            distinct: false,
        }
    }

    pub fn count_star() -> Expr {
        Expr::func("count", vec![Expr::Wildcard])
    }

    pub fn exists(q: Query) -> Expr {
        Expr::Exists {
            subquery: Box::new(q),
            negated: false,
        }
    }

    pub fn not_exists(q: Query) -> Expr {
        Expr::Exists {
            subquery: Box::new(q),
            negated: true,
        }
    }

    /// Conjoin all expressions with `AND`; `None` when the input is empty.
    pub fn conjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Disjoin all expressions with `OR`; `None` when the input is empty.
    pub fn disjoin(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::or)
    }

    /// Split a conjunction into its top-level conjuncts.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::BinaryOp {
                left,
                op: BinaryOp::And,
                right,
            } = e
            {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// All column references in the expression, in source order, without
    /// descending into subqueries (their columns belong to an inner scope).
    pub fn column_refs(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.visit_columns(&mut |c| out.push(c));
        out
    }

    fn visit_columns<'a>(&'a self, f: &mut impl FnMut(&'a ColumnRef)) {
        match self {
            Expr::Column(c) => f(c),
            Expr::Literal(_) | Expr::Wildcard => {}
            Expr::BinaryOp { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::UnaryOp { expr, .. } | Expr::IsNull { expr, .. } => expr.visit_columns(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit_columns(f);
                for e in list {
                    e.visit_columns(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit_columns(f),
            Expr::Like { expr, pattern, .. } => {
                expr.visit_columns(f);
                pattern.visit_columns(f);
            }
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => {}
            Expr::Case {
                branches,
                else_expr,
            } => {
                for (c, v) in branches {
                    c.visit_columns(f);
                    v.visit_columns(f);
                }
                if let Some(e) = else_expr {
                    e.visit_columns(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
        }
    }

    /// `true` when the expression contains an aggregate function call at any
    /// depth outside of subqueries.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, args, .. } => {
                is_aggregate_function(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::BinaryOp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::UnaryOp { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                branches,
                else_expr,
            } => {
                branches
                    .iter()
                    .any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            _ => false,
        }
    }
}

/// Keywords that cannot be used as bare identifiers (aliases, column or
/// table names); quote them with `"..."` instead. Shared by the parser
/// (alias/expression disambiguation) and the printer (quoting decisions).
pub const RESERVED_WORDS: &[&str] = &[
    "select", "from", "where", "group", "having", "order", "limit", "union", "on", "join", "left",
    "right", "full", "inner", "outer", "cross", "and", "or", "not", "as", "by", "distinct",
    "exists", "in", "is", "null", "between", "like", "case", "when", "then", "else", "end", "with",
    "values", "insert", "create", "into", "all", "asc", "desc",
];

/// `true` when `word` (already lower-cased) is a reserved keyword.
pub fn is_reserved_word(word: &str) -> bool {
    RESERVED_WORDS.contains(&word)
}

/// `true` for the aggregate function names this dialect recognises.
pub fn is_aggregate_function(name: &str) -> bool {
    matches!(name, "sum" | "min" | "max" | "count" | "avg")
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
}

impl SelectItem {
    pub fn expr(expr: Expr) -> SelectItem {
        SelectItem::Expr { expr, alias: None }
    }

    pub fn aliased(expr: Expr, alias: impl Into<String>) -> SelectItem {
        SelectItem::Expr {
            expr,
            alias: Some(alias.into()),
        }
    }
}

/// Join flavour. `Cross` models the comma in `FROM a, b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    Cross,
}

/// An element of the `FROM` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE reference, optionally aliased.
    Table { name: String, alias: Option<String> },
    /// Derived table `(subquery) AS alias`.
    Subquery { query: Box<Query>, alias: String },
    /// `left JOIN right ON cond` (or LEFT OUTER / CROSS variants).
    Join {
        left: Box<TableRef>,
        kind: JoinKind,
        right: Box<TableRef>,
        on: Option<Expr>,
    },
}

impl TableRef {
    pub fn table(name: impl Into<String>) -> TableRef {
        TableRef::Table {
            name: name.into(),
            alias: None,
        }
    }

    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef::Table {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    pub fn join(self, right: TableRef, on: Expr) -> TableRef {
        TableRef::Join {
            left: Box::new(self),
            kind: JoinKind::Inner,
            right: Box::new(right),
            on: Some(on),
        }
    }

    pub fn left_outer_join(self, right: TableRef, on: Expr) -> TableRef {
        TableRef::Join {
            left: Box::new(self),
            kind: JoinKind::LeftOuter,
            right: Box::new(right),
            on: Some(on),
        }
    }

    /// The alias by which this table is referenced, or the table name when
    /// unaliased. `None` for joins.
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableRef::Subquery { alias, .. } => Some(alias),
            TableRef::Join { .. } => None,
        }
    }
}

/// A `SELECT` block (one operand of a set expression).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// Body of a query: a select block or a `UNION ALL` of bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    UnionAll(Box<SetExpr>, Box<SetExpr>),
}

impl SetExpr {
    /// Iterate over the select blocks of this body, left to right.
    pub fn selects(&self) -> Vec<&Select> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a SetExpr, out: &mut Vec<&'a Select>) {
            match e {
                SetExpr::Select(s) => out.push(s),
                SetExpr::UnionAll(l, r) => {
                    walk(l, out);
                    walk(r, out);
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

/// Sort direction of one `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// A common table expression: `name AS (query)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub query: Query,
}

/// A complete query: `WITH` clause, body, `ORDER BY`, `LIMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<Cte>,
    pub body: SetExpr,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// Wrap a single select block into a query with no CTEs or ordering.
    pub fn from_select(select: Select) -> Query {
        Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// The single select block of a simple query, if the body is not a union.
    pub fn as_select(&self) -> Option<&Select> {
        match &self.body {
            SetExpr::Select(s) => Some(s),
            SetExpr::UnionAll(..) => None,
        }
    }
}

/// Column type in `CREATE TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    Integer,
    Float,
    Text,
    Date,
    Boolean,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: TypeName,
}

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    /// `INSERT INTO name [(cols)] VALUES (…), (…)` .
    Insert {
        table: String,
        columns: Vec<String>,
        rows: Vec<Vec<Expr>>,
    },
    /// `DROP TABLE name`.
    DropTable {
        name: String,
    },
    /// `CREATE INDEX ON name (col, ...)` — declare a secondary index over
    /// the listed columns (column order matters for multi-column probes).
    CreateIndex {
        table: String,
        columns: Vec<String>,
    },
}
