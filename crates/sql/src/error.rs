//! Parse-error type shared by the lexer and parser.

use std::fmt;

/// Result alias for the SQL front end.
pub type Result<T> = std::result::Result<T, ParseError>;

/// An error produced while lexing or parsing SQL text.
///
/// Carries a human-readable message and the byte offset in the input at
/// which the problem was detected, so callers can point at the offending
/// position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    offset: usize,
}

impl ParseError {
    pub(crate) fn new(message: impl Into<String>, offset: usize) -> Self {
        ParseError {
            message: message.into(),
            offset,
        }
    }

    /// The human-readable description of the error.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Byte offset into the original SQL text where the error occurred.
    pub fn offset(&self) -> usize {
        self.offset
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}
