//! SQL front end for the ConQuer consistent-query-answering system.
//!
//! This crate provides a handwritten lexer, a recursive-descent parser, an
//! abstract syntax tree, and a pretty-printer for the SQL dialect that
//! ConQuer consumes (the tree queries of Fuxman, Fazli & Miller, SIGMOD
//! 2005, Definition 4) and the dialect it *emits* (the rewritten queries of
//! Figures 3–8 of the paper: `WITH` common table expressions, `LEFT OUTER
//! JOIN`, `NOT EXISTS`, `UNION ALL`, `GROUP BY`/`HAVING`, `CASE`).
//!
//! The printer and parser round-trip: for every AST `q` produced by the
//! parser, `parse_query(&q.to_string())` yields an equal AST. ConQuer's
//! rewritings rely on this to hand optimized SQL text to any engine.
//!
//! # Example
//!
//! ```
//! use conquer_sql::parse_query;
//!
//! let q = parse_query("select custkey from customer where acctbal > 1000").unwrap();
//! assert_eq!(q.to_string(), "SELECT custkey FROM customer WHERE acctbal > 1000");
//! ```

// The front end parses untrusted SQL text: like the engine, library code
// must surface structured `ParseError`s, never panic. Tests may unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod dates;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use error::{ParseError, Result};

/// Parse a complete SQL query (optionally starting with a `WITH` clause).
///
/// Trailing input after the query (other than a single `;`) is an error.
pub fn parse_query(sql: &str) -> Result<Query> {
    parser::Parser::new(sql)?.parse_query_eof()
}

/// Parse a single SQL statement: a query, `CREATE TABLE`, or `INSERT`.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    parser::Parser::new(sql)?.parse_statement_eof()
}

/// Parse a sequence of `;`-separated SQL statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    parser::Parser::new(sql)?.parse_statements_eof()
}

/// Parse a scalar expression in isolation (useful for tests and tools).
pub fn parse_expr(sql: &str) -> Result<Expr> {
    parser::Parser::new(sql)?.parse_expr_eof()
}
