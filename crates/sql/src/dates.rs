//! Minimal proleptic-Gregorian date arithmetic.
//!
//! Dates are stored as a number of days since the Unix epoch (1970-01-01),
//! which keeps the engine's `Value::Date` a plain `i32` that is cheap to
//! compare, hash, and generate. TPC-H only needs dates between 1992 and
//! 1998, but the conversions below are exact for the full Gregorian range.

/// Number of days in each month of a non-leap year.
const DAYS_IN_MONTH: [i64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Returns `true` when `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> i64 {
    if month == 2 && is_leap_year(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days from 0000-03-01 to `year-03-01` using the civil-from-days algorithm
/// (Howard Hinnant's `days_from_civil`), shifted so that day 0 is 1970-01-01.
pub fn ymd_to_days(year: i32, month: u32, day: u32) -> Option<i32> {
    if !(1..=12).contains(&month) {
        return None;
    }
    if day == 0 || (day as i64) > days_in_month(year, month) {
        return None;
    }
    let y = i64::from(year) - i64::from(month <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(month);
    let d = i64::from(day);
    let doy = (153 * (m + if m > 2 { -3 } else { 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    let days = era * 146097 + doe - 719468;
    i32::try_from(days).ok()
}

/// Inverse of [`ymd_to_days`]: day count since 1970-01-01 back to (y, m, d).
pub fn days_to_ymd(days: i32) -> (i32, u32, u32) {
    let z = i64::from(days) + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = mp + if mp < 10 { 3 } else { -9 }; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

/// Parse a `YYYY-MM-DD` string into days since 1970-01-01.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut parts = s.split('-');
    let year: i32 = parts.next()?.parse().ok()?;
    let month: u32 = parts.next()?.parse().ok()?;
    let day: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    ymd_to_days(year, month, day)
}

/// Format days since 1970-01-01 as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_ymd(days);
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(ymd_to_days(1970, 1, 1), Some(0));
        assert_eq!(days_to_ymd(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        // TPC-H date range endpoints.
        assert_eq!(ymd_to_days(1992, 1, 1), Some(8035));
        assert_eq!(ymd_to_days(1998, 12, 31), Some(10591));
        // Leap day.
        assert_eq!(
            ymd_to_days(1996, 2, 29).map(format_date).as_deref(),
            Some("1996-02-29")
        );
    }

    #[test]
    fn rejects_invalid_dates() {
        assert_eq!(ymd_to_days(1995, 2, 29), None);
        assert_eq!(ymd_to_days(1995, 13, 1), None);
        assert_eq!(ymd_to_days(1995, 0, 1), None);
        assert_eq!(ymd_to_days(1995, 4, 31), None);
        assert_eq!(parse_date("1995-06"), None);
        assert_eq!(parse_date("not-a-date"), None);
    }

    #[test]
    fn round_trips_every_day_of_a_century() {
        let start = ymd_to_days(1950, 1, 1).unwrap();
        let end = ymd_to_days(2050, 1, 1).unwrap();
        for day in start..=end {
            let (y, m, d) = days_to_ymd(day);
            assert_eq!(ymd_to_days(y, m, d), Some(day));
        }
    }

    #[test]
    fn parse_and_format_round_trip() {
        for s in ["1970-01-01", "1995-03-15", "2000-02-29", "1999-12-31"] {
            let days = parse_date(s).unwrap();
            assert_eq!(format_date(days), s);
        }
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1995));
    }
}
