//! Recursive-descent parser for the ConQuer SQL dialect.
//!
//! Operator precedence (loosest to tightest): `OR`, `AND`, `NOT`,
//! predicates (`=`, `<`, `BETWEEN`, `IN`, `LIKE`, `IS NULL`, ...),
//! `+`/`-`, `*`/`/`/`%`, unary minus, primary.

use crate::ast::*;
use crate::dates;
use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, Token, TokenKind};

use crate::ast::RESERVED_WORDS as RESERVED;

/// The parser. Construct with [`Parser::new`], then call one of the
/// `parse_*_eof` entry points.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Tokenize `sql` and position at the first token.
    pub fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    /// Parse a complete query and require end of input.
    pub fn parse_query_eof(&mut self) -> Result<Query> {
        let q = self.parse_query()?;
        self.eat_kind(&TokenKind::Semicolon);
        self.expect_eof()?;
        Ok(q)
    }

    /// Parse a single statement and require end of input.
    pub fn parse_statement_eof(&mut self) -> Result<Statement> {
        let s = self.parse_statement()?;
        self.eat_kind(&TokenKind::Semicolon);
        self.expect_eof()?;
        Ok(s)
    }

    /// Parse `;`-separated statements until end of input.
    pub fn parse_statements_eof(&mut self) -> Result<Vec<Statement>> {
        let mut out = Vec::new();
        loop {
            while self.eat_kind(&TokenKind::Semicolon) {}
            if matches!(self.peek().kind, TokenKind::Eof) {
                return Ok(out);
            }
            out.push(self.parse_statement()?);
        }
    }

    /// Parse an expression and require end of input.
    pub fn parse_expr_eof(&mut self) -> Result<Expr> {
        let e = self.parse_expr()?;
        self.expect_eof()?;
        Ok(e)
    }

    // ---- token helpers -------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_at(&self, n: usize) -> &Token {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.peek().offset)
    }

    /// Consume the next token if it is the given keyword (case-insensitive).
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = &self.peek().kind {
            if s == kw {
                self.advance();
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn peek_keyword_at(&self, n: usize, kw: &str) -> bool {
        matches!(&self.peek_at(n).kind, TokenKind::Ident(s) if s == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected `{}`, found {}",
                kw,
                self.peek().kind.describe()
            )))
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat_kind(kind) {
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek().kind, TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.error_here(format!("unexpected {}", self.peek().kind.describe())))
        }
    }

    /// Parse any identifier (quoted or not) and return its name.
    fn parse_ident(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s)
            }
            other => {
                Err(self.error_here(format!("expected identifier, found {}", other.describe())))
            }
        }
    }

    /// Parse an optional `AS alias` or bare alias.
    fn parse_optional_alias(&mut self) -> Result<Option<String>> {
        if self.eat_keyword("as") {
            return Ok(Some(self.parse_ident()?));
        }
        match &self.peek().kind {
            TokenKind::Ident(s) if !RESERVED.contains(&s.as_str()) => {
                let alias = s.clone();
                self.advance();
                Ok(Some(alias))
            }
            TokenKind::QuotedIdent(s) => {
                let alias = s.clone();
                self.advance();
                Ok(Some(alias))
            }
            _ => Ok(None),
        }
    }

    // ---- statements ----------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.peek_keyword("create") && self.peek_keyword_at(1, "index") {
            self.parse_create_index()
        } else if self.peek_keyword("create") {
            self.parse_create_table()
        } else if self.peek_keyword("insert") {
            self.parse_insert()
        } else if self.peek_keyword("drop") {
            self.parse_drop_table()
        } else {
            Ok(Statement::Query(self.parse_query()?))
        }
    }

    fn parse_drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("drop")?;
        self.expect_keyword("table")?;
        let name = self.parse_ident()?;
        Ok(Statement::DropTable { name })
    }

    fn parse_create_index(&mut self) -> Result<Statement> {
        self.expect_keyword("create")?;
        self.expect_keyword("index")?;
        self.expect_keyword("on")?;
        let table = self.parse_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.parse_ident()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Statement::CreateIndex { table, columns })
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        self.expect_keyword("create")?;
        self.expect_keyword("table")?;
        let name = self.parse_ident()?;
        self.expect_kind(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.parse_ident()?;
            let ty = self.parse_type_name()?;
            columns.push(ColumnDef { name: col, ty });
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn parse_type_name(&mut self) -> Result<TypeName> {
        let name = self.parse_ident()?;
        let ty = match name.as_str() {
            "int" | "integer" | "bigint" | "smallint" => TypeName::Integer,
            "float" | "double" | "real" | "decimal" | "numeric" => TypeName::Float,
            "text" | "varchar" | "char" | "string" => TypeName::Text,
            "date" => TypeName::Date,
            "bool" | "boolean" => TypeName::Boolean,
            other => return Err(self.error_here(format!("unknown type `{other}`"))),
        };
        // Allow an ignored precision suffix: varchar(25), decimal(15, 2).
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                match self.advance().kind {
                    TokenKind::Integer(_) | TokenKind::Comma => {}
                    TokenKind::RParen => break,
                    other => {
                        return Err(
                            self.error_here(format!("unexpected {} in type", other.describe()))
                        )
                    }
                }
            }
        }
        Ok(ty)
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_keyword("insert")?;
        self.expect_keyword("into")?;
        let table = self.parse_ident()?;
        let mut columns = Vec::new();
        if self.eat_kind(&TokenKind::LParen) {
            loop {
                columns.push(self.parse_ident()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
        }
        self.expect_keyword("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    // ---- queries ---------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_keyword("with") {
            loop {
                let name = self.parse_ident()?;
                self.expect_keyword("as")?;
                self.expect_kind(&TokenKind::LParen)?;
                let query = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                ctes.push(Cte { name, query });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword("limit") {
            match self.advance().kind {
                TokenKind::Integer(n) if n >= 0 => limit = Some(n as u64),
                other => {
                    return Err(self.error_here(format!(
                        "expected non-negative integer after LIMIT, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.parse_set_operand()?;
        while self.peek_keyword("union") {
            self.advance();
            self.expect_keyword("all")?;
            let right = self.parse_set_operand()?;
            left = SetExpr::UnionAll(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_set_operand(&mut self) -> Result<SetExpr> {
        // Allow parenthesized select blocks as set operands.
        if matches!(self.peek().kind, TokenKind::LParen)
            && (self.peek_keyword_at(1, "select") || self.peek_keyword_at(1, "with"))
        {
            self.advance();
            let inner = self.parse_set_expr()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(inner);
        }
        Ok(SetExpr::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_keyword("from") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if matches!(
            self.peek().kind,
            TokenKind::Ident(_) | TokenKind::QuotedIdent(_)
        ) && matches!(self.peek_at(1).kind, TokenKind::Dot)
            && matches!(self.peek_at(2).kind, TokenKind::Star)
        {
            let q = self.parse_ident()?;
            self.advance(); // .
            self.advance(); // *
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_optional_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.peek_keyword("join") {
                self.advance();
                JoinKind::Inner
            } else if self.peek_keyword("inner") && self.peek_keyword_at(1, "join") {
                self.advance();
                self.advance();
                JoinKind::Inner
            } else if self.peek_keyword("left") {
                self.advance();
                self.eat_keyword("outer");
                self.expect_keyword("join")?;
                JoinKind::LeftOuter
            } else if self.peek_keyword("cross") && self.peek_keyword_at(1, "join") {
                self.advance();
                self.advance();
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else if self.eat_keyword("on") {
                Some(self.parse_expr()?)
            } else {
                // The paper's Figure 5 writes `left outer join LOJ where ...`
                // with the join predicate folded into LOJ; we require ON for
                // non-cross joins to avoid silently building cross products.
                return Err(self.error_here("expected `on` after join"));
            };
            left = TableRef::Join {
                left: Box::new(left),
                kind,
                right: Box::new(right),
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if matches!(self.peek().kind, TokenKind::LParen) {
            // Either a derived table `(select ...) alias` or a
            // parenthesized join tree `(a join b on ...)`.
            if self.peek_keyword_at(1, "select") || self.peek_keyword_at(1, "with") {
                self.advance();
                let query = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                let alias = self
                    .parse_optional_alias()?
                    .ok_or_else(|| self.error_here("derived table requires an alias"))?;
                return Ok(TableRef::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            self.advance();
            let inner = self.parse_table_ref()?;
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_ident()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions -----------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("or") {
            let right = self.parse_and()?;
            left = Expr::or(left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("and") {
            let right = self.parse_not()?;
            left = Expr::and(left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.peek_keyword("not") && !self.peek_keyword_at(1, "exists") {
            self.advance();
            let inner = self.parse_not()?;
            return Ok(Expr::not(inner));
        }
        self.parse_predicate()
    }

    /// Comparison and SQL predicate forms over additive expressions.
    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.peek_keyword("is") {
            self.advance();
            let negated = self.eat_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] BETWEEN / IN / LIKE
        let negated = if self.peek_keyword("not")
            && (self.peek_keyword_at(1, "between")
                || self.peek_keyword_at(1, "in")
                || self.peek_keyword_at(1, "like"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("in") {
            self.expect_kind(&TokenKind::LParen)?;
            if self.peek_keyword("select") || self.peek_keyword("with") {
                let q = self.parse_query()?;
                self.expect_kind(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    subquery: Box::new(q),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error_here("expected BETWEEN, IN, or LIKE after NOT"));
        }
        // Plain comparison.
        let op = match self.peek().kind {
            TokenKind::Eq => BinaryOp::Eq,
            TokenKind::NotEq => BinaryOp::NotEq,
            TokenKind::Lt => BinaryOp::Lt,
            TokenKind::LtEq => BinaryOp::LtEq,
            TokenKind::Gt => BinaryOp::Gt,
            TokenKind::GtEq => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::binary(left, op, right))
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Plus,
                TokenKind::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Multiply,
                TokenKind::Slash => BinaryOp::Divide,
                TokenKind::Percent => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // Fold negation of numeric literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Literal::Integer(v)) => Expr::Literal(Literal::Integer(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::UnaryOp {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Integer(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Integer(v)))
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Literal(Literal::String(s)))
            }
            TokenKind::Star => {
                self.advance();
                Ok(Expr::Wildcard)
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek_keyword("select") || self.peek_keyword("with") {
                    let q = self.parse_query()?;
                    self.expect_kind(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let inner = self.parse_expr()?;
                self.expect_kind(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(word) => self.parse_ident_primary(word),
            TokenKind::QuotedIdent(name) => {
                self.advance();
                self.parse_column_tail(name)
            }
            other => {
                Err(self.error_here(format!("expected expression, found {}", other.describe())))
            }
        }
    }

    /// Primary expressions that start with an identifier-like token:
    /// keywords (`null`, `true`, `case`, `exists`, `date`), function calls,
    /// and column references.
    fn parse_ident_primary(&mut self, word: String) -> Result<Expr> {
        match word.as_str() {
            "null" => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            "true" => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            "false" => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            "date" if matches!(self.peek_at(1).kind, TokenKind::String(_)) => {
                self.advance();
                let s = match self.advance().kind {
                    TokenKind::String(s) => s,
                    other => {
                        return Err(self.error_here(format!(
                            "expected string after `date`, found {}",
                            other.describe()
                        )))
                    }
                };
                let days = dates::parse_date(&s).ok_or_else(|| {
                    self.error_here(format!("invalid date literal '{s}' (expected YYYY-MM-DD)"))
                })?;
                Ok(Expr::Literal(Literal::Date(days)))
            }
            "case" => self.parse_case(),
            "exists" => {
                self.advance();
                self.parse_exists(false)
            }
            "not" if self.peek_keyword_at(1, "exists") => {
                self.advance();
                self.advance();
                self.parse_exists(true)
            }
            _ => {
                if RESERVED.contains(&word.as_str()) {
                    return Err(self.error_here(format!(
                        "expected expression, found keyword `{word}` (quote it to use as a column)"
                    )));
                }
                self.advance();
                if matches!(self.peek().kind, TokenKind::LParen) {
                    return self.parse_function_call(word);
                }
                self.parse_column_tail(word)
            }
        }
    }

    fn parse_exists(&mut self, negated: bool) -> Result<Expr> {
        self.expect_kind(&TokenKind::LParen)?;
        let q = self.parse_query()?;
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Expr::Exists {
            subquery: Box::new(q),
            negated,
        })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_keyword("case")?;
        let mut branches = Vec::new();
        while self.eat_keyword("when") {
            let cond = self.parse_expr()?;
            self.expect_keyword("then")?;
            let value = self.parse_expr()?;
            branches.push((cond, value));
        }
        if branches.is_empty() {
            return Err(self.error_here("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_keyword("else") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("end")?;
        Ok(Expr::Case {
            branches,
            else_expr,
        })
    }

    fn parse_function_call(&mut self, name: String) -> Result<Expr> {
        self.expect_kind(&TokenKind::LParen)?;
        let distinct = self.eat_keyword("distinct");
        let mut args = Vec::new();
        if !matches!(self.peek().kind, TokenKind::RParen) {
            loop {
                if self.eat_kind(&TokenKind::Star) {
                    args.push(Expr::Wildcard);
                } else {
                    args.push(self.parse_expr()?);
                }
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect_kind(&TokenKind::RParen)?;
        Ok(Expr::Function {
            name,
            args,
            distinct,
        })
    }

    /// After consuming an identifier, parse an optional `.column` suffix.
    fn parse_column_tail(&mut self, first: String) -> Result<Expr> {
        if matches!(self.peek().kind, TokenKind::Dot) {
            self.advance();
            let name = self.parse_ident()?;
            return Ok(Expr::Column(ColumnRef {
                qualifier: Some(first),
                name,
            }));
        }
        Ok(Expr::Column(ColumnRef {
            qualifier: None,
            name: first,
        }))
    }
}
