//! Hand-rolled SQL lexer.
//!
//! Produces a flat vector of tokens with byte offsets. Keywords are not
//! distinguished from identifiers at this level; the parser matches
//! identifier tokens case-insensitively against keywords, which keeps the
//! lexer simple and allows keywords to be used as column names where the
//! grammar is unambiguous (TPC-H uses e.g. a column named `comment`).

use crate::error::{ParseError, Result};

/// One lexical token plus its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// The token categories of the dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Unquoted identifier or keyword, lower-cased.
    Ident(String),
    /// Double-quoted identifier, case preserved.
    QuotedIdent(String),
    /// Single-quoted string literal with `''` unescaped.
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Floating-point literal.
    Float(f64),
    LParen,
    RParen,
    Comma,
    Semicolon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// End of input sentinel.
    Eof,
}

impl TokenKind {
    /// Human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::QuotedIdent(s) => format!("identifier \"{s}\""),
            TokenKind::String(s) => format!("string '{s}'"),
            TokenKind::Integer(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("number {v}"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::NotEq => "`<>`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::LtEq => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::GtEq => "`>=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize an entire SQL string. The result always ends with [`TokenKind::Eof`].
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let start = i;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment.
                let mut j = i + 2;
                loop {
                    match bytes.get(j) {
                        Some(b'*') if bytes.get(j + 1) == Some(&b'/') => {
                            i = j + 2;
                            break;
                        }
                        Some(_) => j += 1,
                        None => return Err(ParseError::new("unterminated block comment", start)),
                    }
                }
            }
            b'(' => push_simple(&mut tokens, TokenKind::LParen, &mut i),
            b')' => push_simple(&mut tokens, TokenKind::RParen, &mut i),
            b',' => push_simple(&mut tokens, TokenKind::Comma, &mut i),
            b';' => push_simple(&mut tokens, TokenKind::Semicolon, &mut i),
            b'.' => push_simple(&mut tokens, TokenKind::Dot, &mut i),
            b'*' => push_simple(&mut tokens, TokenKind::Star, &mut i),
            b'+' => push_simple(&mut tokens, TokenKind::Plus, &mut i),
            b'-' => push_simple(&mut tokens, TokenKind::Minus, &mut i),
            b'/' => push_simple(&mut tokens, TokenKind::Slash, &mut i),
            b'%' => push_simple(&mut tokens, TokenKind::Percent, &mut i),
            b'=' => push_simple(&mut tokens, TokenKind::Eq, &mut i),
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::LtEq,
                        offset: start,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token {
                        kind: TokenKind::NotEq,
                        offset: start,
                    });
                    i += 2;
                }
                _ => push_simple(&mut tokens, TokenKind::Lt, &mut i),
            },
            b'>' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token {
                        kind: TokenKind::GtEq,
                        offset: start,
                    });
                    i += 2;
                }
                _ => push_simple(&mut tokens, TokenKind::Gt, &mut i),
            },
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token {
                    kind: TokenKind::NotEq,
                    offset: start,
                });
                i += 2;
            }
            b'\'' => {
                let (s, next) = lex_string(sql, i)?;
                tokens.push(Token {
                    kind: TokenKind::String(s),
                    offset: start,
                });
                i = next;
            }
            b'"' => {
                let (s, next) = lex_quoted_ident(sql, i)?;
                tokens.push(Token {
                    kind: TokenKind::QuotedIdent(s),
                    offset: start,
                });
                i = next;
            }
            b'0'..=b'9' => {
                let (kind, next) = lex_number(sql, i)?;
                tokens.push(Token {
                    kind,
                    offset: start,
                });
                i = next;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut j = i + 1;
                while j < bytes.len()
                    && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'$')
                {
                    j += 1;
                }
                let word = sql[i..j].to_ascii_lowercase();
                tokens.push(Token {
                    kind: TokenKind::Ident(word),
                    offset: start,
                });
                i = j;
            }
            _ => {
                let ch = sql
                    .get(i..)
                    .and_then(|s| s.chars().next())
                    .unwrap_or('\u{FFFD}');
                return Err(ParseError::new(
                    format!("unexpected character {ch:?}"),
                    start,
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: bytes.len(),
    });
    Ok(tokens)
}

fn push_simple(tokens: &mut Vec<Token>, kind: TokenKind, i: &mut usize) {
    tokens.push(Token { kind, offset: *i });
    *i += 1;
}

/// Lex a single-quoted string starting at `start`; returns the unescaped
/// contents and the index one past the closing quote. `''` escapes a quote.
fn lex_string(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            Some(b'\'') => {
                if bytes.get(i + 1) == Some(&b'\'') {
                    out.push('\'');
                    i += 2;
                } else {
                    return Ok((out, i + 1));
                }
            }
            Some(_) => {
                // Advance over a full UTF-8 scalar; `i` always sits on a
                // boundary, but stay panic-free on arbitrary input.
                let Some(ch) = sql.get(i..).and_then(|s| s.chars().next()) else {
                    return Err(ParseError::new("unterminated string literal", start));
                };
                out.push(ch);
                i += ch.len_utf8();
            }
            None => return Err(ParseError::new("unterminated string literal", start)),
        }
    }
}

fn lex_quoted_ident(sql: &str, start: usize) -> Result<(String, usize)> {
    let bytes = sql.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    loop {
        match bytes.get(i) {
            Some(b'"') => {
                if bytes.get(i + 1) == Some(&b'"') {
                    out.push('"');
                    i += 2;
                } else {
                    return Ok((out, i + 1));
                }
            }
            Some(_) => {
                let Some(ch) = sql.get(i..).and_then(|s| s.chars().next()) else {
                    return Err(ParseError::new("unterminated quoted identifier", start));
                };
                out.push(ch);
                i += ch.len_utf8();
            }
            None => return Err(ParseError::new("unterminated quoted identifier", start)),
        }
    }
}

fn lex_number(sql: &str, start: usize) -> Result<(TokenKind, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &sql[start..i];
    if is_float {
        let v: f64 = text
            .parse()
            .map_err(|_| ParseError::new(format!("invalid numeric literal `{text}`"), start))?;
        Ok((TokenKind::Float(v), i))
    } else {
        let v: i64 = text.parse().map_err(|_| {
            ParseError::new(format!("integer literal out of range `{text}`"), start)
        })?;
        Ok((TokenKind::Integer(v), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_basic_query() {
        let ks = kinds("select custkey from customer where acctbal > 1000");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("custkey".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Ident("customer".into()),
                TokenKind::Ident("where".into()),
                TokenKind::Ident("acctbal".into()),
                TokenKind::Gt,
                TokenKind::Integer(1000),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds("'it''s'"),
            vec![TokenKind::String("it's".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("1 2.5 3e2 4.5E-1"),
            vec![
                TokenKind::Integer(1),
                TokenKind::Float(2.5),
                TokenKind::Float(300.0),
                TokenKind::Float(0.45),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integer_followed_by_dot_star_is_not_float() {
        // `1.*` should not lex the dot into a float (needed for `count(*)`
        // style constructs after numbers never occurs, but guard anyway).
        assert_eq!(
            kinds("1. *"),
            vec![
                TokenKind::Integer(1),
                TokenKind::Dot,
                TokenKind::Star,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("select -- line comment\n 1 /* block\ncomment */ , 2"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Integer(1),
                TokenKind::Comma,
                TokenKind::Integer(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_lowercased() {
        assert_eq!(
            kinds("SELECT FrOm"),
            vec![
                TokenKind::Ident("select".into()),
                TokenKind::Ident("from".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        assert_eq!(
            kinds("\"MixedCase\""),
            vec![TokenKind::QuotedIdent("MixedCase".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn reports_unterminated_string() {
        let err = tokenize("select 'oops").unwrap_err();
        assert!(err.message().contains("unterminated string"));
        assert_eq!(err.offset(), 7);
    }

    #[test]
    fn reports_unexpected_character() {
        let err = tokenize("select @x").unwrap_err();
        assert!(err.message().contains("unexpected character"));
    }
}
