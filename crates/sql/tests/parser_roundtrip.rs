//! Parser tests: structure checks plus print/parse round-trips, including
//! the literal rewritten queries from Figures 3 and 4 of the paper.

use conquer_sql::{
    parse_expr, parse_query, parse_statement, parse_statements, BinaryOp, Expr, JoinKind, Literal,
    SelectItem, SetExpr, Statement, TableRef,
};

/// Parse, print, re-parse, and require identical ASTs.
fn roundtrip(sql: &str) -> String {
    let q1 = parse_query(sql).unwrap_or_else(|e| panic!("parse {sql:?}: {e}"));
    let printed = q1.to_string();
    let q2 = parse_query(&printed).unwrap_or_else(|e| panic!("re-parse {printed:?}: {e}"));
    assert_eq!(q1, q2, "round trip changed the AST for {sql:?}");
    printed
}

#[test]
fn parses_paper_query_q1() {
    let q = parse_query("select custkey from customer where acctbal > 1000").unwrap();
    let s = q.as_select().unwrap();
    assert_eq!(s.projection.len(), 1);
    assert_eq!(s.from, vec![TableRef::table("customer")]);
    let Some(Expr::BinaryOp { op, .. }) = &s.selection else {
        panic!()
    };
    assert_eq!(*op, BinaryOp::Gt);
}

#[test]
fn parses_paper_rewriting_qc1() {
    // The rewriting of q1 from Section 1 of the paper.
    let sql = "select distinct custkey from customer c \
               where acctbal > 1000 and not exists (select * from customer c2 \
               where c2.custkey = c.custkey and c2.acctbal <= 1000)";
    let q = parse_query(sql).unwrap();
    let s = q.as_select().unwrap();
    assert!(s.distinct);
    let conjuncts = s.selection.as_ref().unwrap().split_conjuncts().len();
    assert_eq!(conjuncts, 2);
    roundtrip(sql);
}

#[test]
fn parses_paper_rewriting_qc2_figure3() {
    let sql = "with candidates as (\
                 select distinct o.orderkey from customer c, \"order\" o \
                 where c.acctbal > 1000 and o.custfk = c.custkey), \
               filter as (\
                 select o.orderkey from candidates cand \
                 join \"order\" o on cand.orderkey = o.orderkey \
                 left outer join customer c on o.custfk = c.custkey \
                 where c.custkey is null or c.acctbal <= 1000) \
               select orderkey from candidates cand \
               where not exists (select * from filter f where cand.orderkey = f.orderkey)";
    let q = parse_query(sql).unwrap();
    assert_eq!(q.ctes.len(), 2);
    assert_eq!(q.ctes[0].name, "candidates");
    assert_eq!(q.ctes[1].name, "filter");
    roundtrip(sql);
}

#[test]
fn parses_paper_rewriting_qc3_figure4_with_union_all() {
    let sql = "with candidates as (\
                 select distinct o.orderkey, o.clerk from customer c, orders o \
                 where c.acctbal > 1000 and o.custfk = c.custkey), \
               filter as (\
                 select o.orderkey from candidates cand \
                 join orders o on cand.orderkey = o.orderkey \
                 left outer join customer c on o.custfk = c.custkey \
                 where c.custkey is null or c.acctbal <= 1000 \
                 union all \
                 select orderkey from candidates cand group by orderkey having count(*) > 1) \
               select clerk from candidates cand \
               where not exists (select * from filter f where cand.orderkey = f.orderkey)";
    let q = parse_query(sql).unwrap();
    let filter = &q.ctes[1].query;
    assert!(matches!(filter.body, SetExpr::UnionAll(..)));
    assert_eq!(filter.body.selects().len(), 2);
    roundtrip(sql);
}

#[test]
fn parses_aggregation_with_group_by_and_case() {
    let sql = "select custkey, nationkey, \
                 case when min(acctbal) > 0 then 0 else min(acctbal) end as minbal, \
                 case when max(acctbal) > 0 then max(acctbal) else 0 end as maxbal \
               from customer c where mktsegment = 'building' \
               group by custkey, nationkey";
    let q = parse_query(sql).unwrap();
    let s = q.as_select().unwrap();
    assert_eq!(s.group_by.len(), 2);
    let SelectItem::Expr {
        expr: Expr::Case {
            branches,
            else_expr,
        },
        alias,
    } = &s.projection[2]
    else {
        panic!()
    };
    assert_eq!(alias.as_deref(), Some("minbal"));
    assert_eq!(branches.len(), 1);
    assert!(else_expr.is_some());
    roundtrip(sql);
}

#[test]
fn parses_joins_left_outer_chain() {
    let sql = "select a.x from t1 a join t2 b on a.k = b.k \
               left outer join t3 c on b.fk = c.k \
               left outer join t4 d on c.fk = d.k where d.k is null";
    let q = parse_query(sql).unwrap();
    let s = q.as_select().unwrap();
    let TableRef::Join { kind, .. } = &s.from[0] else {
        panic!()
    };
    assert_eq!(*kind, JoinKind::LeftOuter);
    roundtrip(sql);
}

#[test]
fn parses_order_by_and_limit() {
    let sql = "select a, b from t order by a desc, b limit 10";
    let q = parse_query(sql).unwrap();
    assert_eq!(q.order_by.len(), 2);
    assert!(q.order_by[0].desc);
    assert!(!q.order_by[1].desc);
    assert_eq!(q.limit, Some(10));
    roundtrip(sql);
}

#[test]
fn parses_date_literals_and_arithmetic() {
    let e = parse_expr("shipdate <= date '1998-09-02'").unwrap();
    let Expr::BinaryOp { right, .. } = e else {
        panic!()
    };
    assert_eq!(*right, Expr::Literal(Literal::date("1998-09-02")));
    roundtrip(
        "select 1 from lineitem where shipdate between date '1994-01-01' and date '1994-12-31'",
    );
}

#[test]
fn rejects_invalid_date_literal() {
    let err = parse_expr("d = date '1995-02-30'").unwrap_err();
    assert!(err.message().contains("invalid date"));
}

#[test]
fn parses_in_list_and_in_subquery() {
    roundtrip("select 1 from orders where orderpriority in ('1-URGENT', '2-HIGH')");
    roundtrip("select 1 from orders where orderkey not in (select orderkey from filter)");
    let e = parse_expr("x not in (1, 2, 3)").unwrap();
    assert!(matches!(e, Expr::InList { negated: true, .. }));
}

#[test]
fn parses_between_like_isnull() {
    roundtrip("select 1 from lineitem where discount between 0.05 and 0.07");
    roundtrip("select 1 from part where name like '%green%'");
    roundtrip("select 1 from t where x is not null and y is null");
}

#[test]
fn parses_arith_precedence() {
    let e = parse_expr("a + b * c - d / e").unwrap();
    // ((a + (b*c)) - (d/e))
    let Expr::BinaryOp {
        op: BinaryOp::Minus,
        left,
        right,
    } = e
    else {
        panic!()
    };
    assert!(matches!(
        *left,
        Expr::BinaryOp {
            op: BinaryOp::Plus,
            ..
        }
    ));
    assert!(matches!(
        *right,
        Expr::BinaryOp {
            op: BinaryOp::Divide,
            ..
        }
    ));
}

#[test]
fn parses_boolean_precedence() {
    let e = parse_expr("a = 1 or b = 2 and c = 3").unwrap();
    let Expr::BinaryOp {
        op: BinaryOp::Or,
        right,
        ..
    } = e
    else {
        panic!()
    };
    assert!(matches!(
        *right,
        Expr::BinaryOp {
            op: BinaryOp::And,
            ..
        }
    ));
}

#[test]
fn printer_parenthesizes_mixed_and_or() {
    let e = Expr::and(
        Expr::or(Expr::bare_col("a"), Expr::bare_col("b")),
        Expr::bare_col("c"),
    );
    assert_eq!(e.to_string(), "(a OR b) AND c");
    assert_eq!(parse_expr(&e.to_string()).unwrap(), e);
}

#[test]
fn printer_preserves_nonassociative_subtraction() {
    let e = Expr::binary(
        Expr::bare_col("a"),
        BinaryOp::Minus,
        Expr::binary(Expr::bare_col("b"), BinaryOp::Minus, Expr::bare_col("c")),
    );
    assert_eq!(e.to_string(), "a - (b - c)");
    assert_eq!(parse_expr(&e.to_string()).unwrap(), e);
}

#[test]
fn parses_count_star_and_distinct_aggregates() {
    let e = parse_expr("count(*)").unwrap();
    assert_eq!(e, Expr::count_star());
    let e = parse_expr("count(distinct clerk)").unwrap();
    assert!(matches!(e, Expr::Function { distinct: true, .. }));
}

#[test]
fn parses_create_table_and_insert() {
    let s = parse_statement(
        "create table customer (custkey integer, name varchar(25), acctbal decimal(15, 2), \
         mktsegment text, since date)",
    )
    .unwrap();
    let Statement::CreateTable { name, columns } = s else {
        panic!()
    };
    assert_eq!(name, "customer");
    assert_eq!(columns.len(), 5);

    let s = parse_statement("insert into customer (custkey, acctbal) values (1, 100.5), (2, -3)")
        .unwrap();
    let Statement::Insert { rows, .. } = s else {
        panic!()
    };
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[1][1], Expr::Literal(Literal::Integer(-3)));
}

#[test]
fn parses_statement_sequence() {
    let stmts =
        parse_statements("create table t (a integer); insert into t values (1); select a from t;")
            .unwrap();
    assert_eq!(stmts.len(), 3);
}

#[test]
fn parses_ddl_statements() {
    let s = parse_statement("drop table customer").unwrap();
    assert_eq!(
        s,
        Statement::DropTable {
            name: "customer".into()
        }
    );
    assert_eq!(s.to_string(), "DROP TABLE customer");

    let s = parse_statement("create index on orders (o_orderkey, o_custkey)").unwrap();
    let Statement::CreateIndex { table, columns } = &s else {
        panic!("expected CreateIndex, got {s:?}")
    };
    assert_eq!(table, "orders");
    assert_eq!(columns, &["o_orderkey", "o_custkey"]);
    assert_eq!(
        s.to_string(),
        "CREATE INDEX ON orders (o_orderkey, o_custkey)"
    );

    // `create` alone still means CREATE TABLE; a bare `drop` needs `table`.
    assert!(parse_statement("drop customer").is_err());
    assert!(parse_statement("create index on t").is_err());
}

#[test]
fn parses_derived_table() {
    roundtrip("select s.total from (select sum(x) as total from t) s where s.total > 0");
}

#[test]
fn parses_qualified_wildcard() {
    let q = parse_query("select f.* from filter f").unwrap();
    let s = q.as_select().unwrap();
    assert_eq!(
        s.projection,
        vec![SelectItem::QualifiedWildcard("f".into())]
    );
    roundtrip("select f.* from filter f");
}

#[test]
fn error_messages_carry_position() {
    let err = parse_query("select from t").unwrap_err();
    assert!(err.message().contains("expected expression"), "{err}");
    let err = parse_query("select a from t where").unwrap_err();
    assert!(err.offset() > 0);
    let err = parse_query("select a from t join u").unwrap_err();
    assert!(err.message().contains("expected `on`"), "{err}");
}

#[test]
fn trailing_garbage_is_rejected() {
    assert!(parse_query("select 1 from t bogus extra tokens").is_err());
    assert!(parse_query("select 1; select 2").is_err());
}

#[test]
fn keywords_usable_as_quoted_identifiers() {
    roundtrip("select \"order\".\"select\" from \"order\"");
}

#[test]
fn case_insensitivity() {
    let a = parse_query("SELECT CustKey FROM Customer WHERE AcctBal > 1000").unwrap();
    let b = parse_query("select custkey from customer where acctbal > 1000").unwrap();
    assert_eq!(a, b);
}

#[test]
fn roundtrip_union_all_with_order_by() {
    roundtrip("select a from t union all select b from u order by 1");
}

#[test]
fn roundtrip_exists_forms() {
    roundtrip("select a from t where exists (select * from u where u.k = t.k)");
    roundtrip("select a from t where not exists (select * from u where u.k = t.k)");
}

#[test]
fn not_binds_looser_than_comparison() {
    let e = parse_expr("not a = b").unwrap();
    let Expr::UnaryOp { expr, .. } = e else {
        panic!()
    };
    assert!(matches!(
        *expr,
        Expr::BinaryOp {
            op: BinaryOp::Eq,
            ..
        }
    ));
}

#[test]
fn negated_comparison_helper() {
    assert_eq!(BinaryOp::Gt.negated_comparison(), Some(BinaryOp::LtEq));
    assert_eq!(BinaryOp::Eq.negated_comparison(), Some(BinaryOp::NotEq));
    assert_eq!(BinaryOp::And.negated_comparison(), None);
}

#[test]
fn split_conjuncts_flattens_nested_ands() {
    let e = parse_expr("a = 1 and b = 2 and c = 3 and d = 4").unwrap();
    assert_eq!(e.split_conjuncts().len(), 4);
}
