//! Property-based printer/parser round-trip: for randomly generated ASTs
//! in the dialect's shape, `parse(print(ast)) == ast`. This is the
//! guarantee ConQuer relies on when handing rewritten SQL text to a host
//! database system.

use proptest::prelude::*;

use conquer_sql::ast::*;
use conquer_sql::{parse_expr, parse_query};

fn ident_strategy() -> impl Strategy<Value = String> {
    // Bare identifiers (avoid reserved words by prefixing).
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("c_{s}"))
}

fn literal_strategy() -> impl Strategy<Value = Literal> {
    prop_oneof![
        Just(Literal::Null),
        any::<bool>().prop_map(Literal::Boolean),
        (-1_000_000i64..1_000_000).prop_map(Literal::Integer),
        // Finite, print-stable floats.
        (-1_000_000i64..1_000_000).prop_map(|v| Literal::Float(v as f64 / 64.0)),
        "[a-zA-Z0-9 ']{0,12}".prop_map(Literal::String),
        (0i32..20_000).prop_map(Literal::Date),
    ]
}

fn column_strategy() -> impl Strategy<Value = Expr> {
    (proptest::option::of(ident_strategy()), ident_strategy()).prop_map(|(q, n)| {
        Expr::Column(ColumnRef { qualifier: q, name: n })
    })
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![column_strategy(), literal_strategy().prop_map(Expr::Literal)]
}

fn binop_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Plus),
        Just(BinaryOp::Minus),
        Just(BinaryOp::Multiply),
        Just(BinaryOp::Divide),
        Just(BinaryOp::Modulo),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), binop_strategy(), inner.clone()).prop_map(|(l, op, r)| {
                Expr::BinaryOp { left: Box::new(l), op, right: Box::new(r) }
            }),
            inner.clone().prop_map(Expr::not),
            inner.clone().prop_map(|e| Expr::IsNull { expr: Box::new(e), negated: false }),
            inner.clone().prop_map(|e| Expr::IsNull { expr: Box::new(e), negated: true }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(e, lo, hi)| {
                Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: false,
                }
            }),
            (inner.clone(), prop::collection::vec(inner.clone(), 1..4), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (
                prop::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner.clone()),
            )
                .prop_map(|(branches, else_expr)| Expr::Case {
                    branches,
                    else_expr: else_expr.map(Box::new),
                }),
            (
                prop::sample::select(vec!["sum", "min", "max", "coalesce", "abs"]),
                prop::collection::vec(inner, 1..3),
            )
                .prop_map(|(name, args)| Expr::func(name, args)),
        ]
    })
}

fn select_strategy() -> impl Strategy<Value = Select> {
    (
        any::<bool>(),
        prop::collection::vec(
            (expr_strategy(), proptest::option::of(ident_strategy())),
            1..4,
        ),
        prop::collection::vec((ident_strategy(), proptest::option::of(ident_strategy())), 1..3),
        proptest::option::of(expr_strategy()),
    )
        .prop_map(|(distinct, items, tables, selection)| {
            // Distinct binding names to keep the FROM clause valid.
            let mut seen = Vec::new();
            let from = tables
                .into_iter()
                .enumerate()
                .map(|(i, (name, alias))| TableRef::Table {
                    name: format!("{name}_{i}"),
                    alias: alias.map(|a| {
                        let a = format!("{a}_{i}");
                        seen.push(a.clone());
                        a
                    }),
                })
                .collect();
            Select {
                distinct,
                projection: items
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                    .collect(),
                from,
                selection,
                group_by: Vec::new(),
                having: None,
            }
        })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        select_strategy(),
        prop::collection::vec((expr_strategy(), any::<bool>()), 0..3),
        proptest::option::of(0u64..1000),
    )
        .prop_map(|(select, order, limit)| Query {
            ctes: Vec::new(),
            body: SetExpr::Select(Box::new(select)),
            order_by: order
                .into_iter()
                .map(|(expr, desc)| OrderByItem { expr, desc })
                .collect(),
            limit,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn expressions_round_trip(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse {printed:?}: {err}"));
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn queries_round_trip(q in query_strategy()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse {printed:?}: {err}"));
        prop_assert_eq!(reparsed, q, "printed: {}", printed);
    }

    #[test]
    fn printing_is_deterministic(e in expr_strategy()) {
        prop_assert_eq!(e.to_string(), e.to_string());
    }
}
