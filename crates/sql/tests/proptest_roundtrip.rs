//! Randomized printer/parser round-trip: for randomly generated ASTs
//! in the dialect's shape, `parse(print(ast)) == ast`. This is the
//! guarantee ConQuer relies on when handing rewritten SQL text to a host
//! database system.
//!
//! ASTs are drawn from a small deterministic generator with fixed seeds
//! (the workspace builds offline, so no property-testing framework); a
//! failure message names the case index that produced it.

use conquer_sql::ast::*;
use conquer_sql::{parse_expr, parse_query};

const CASES: u64 = 400;

/// Minimal deterministic RNG (xorshift64*), local to this test.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        Rng(z.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        (((self.next() as u128) * (n as u128)) >> 64) as u64
    }

    fn chance(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn ident(rng: &mut Rng) -> String {
    // Bare identifiers (avoid reserved words by prefixing).
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::from("c_");
    s.push(HEAD[rng.below(HEAD.len() as u64) as usize] as char);
    for _ in 0..rng.below(6) {
        s.push(TAIL[rng.below(TAIL.len() as u64) as usize] as char);
    }
    s
}

fn literal(rng: &mut Rng) -> Literal {
    match rng.below(6) {
        0 => Literal::Null,
        1 => Literal::Boolean(rng.chance()),
        2 => Literal::Integer(rng.below(2_000_000) as i64 - 1_000_000),
        // Finite, print-stable floats.
        3 => Literal::Float((rng.below(2_000_000) as i64 - 1_000_000) as f64 / 64.0),
        4 => {
            const CHARS: &[u8] = b"abcXYZ012 '";
            let n = rng.below(13);
            let mut s = String::new();
            for _ in 0..n {
                s.push(CHARS[rng.below(CHARS.len() as u64) as usize] as char);
            }
            Literal::String(s)
        }
        _ => Literal::Date(rng.below(20_000) as i32),
    }
}

fn leaf_expr(rng: &mut Rng) -> Expr {
    if rng.chance() {
        let qualifier = if rng.chance() { Some(ident(rng)) } else { None };
        Expr::Column(ColumnRef {
            qualifier,
            name: ident(rng),
        })
    } else {
        Expr::Literal(literal(rng))
    }
}

fn binop(rng: &mut Rng) -> BinaryOp {
    const OPS: [BinaryOp; 13] = [
        BinaryOp::Plus,
        BinaryOp::Minus,
        BinaryOp::Multiply,
        BinaryOp::Divide,
        BinaryOp::Modulo,
        BinaryOp::Eq,
        BinaryOp::NotEq,
        BinaryOp::Lt,
        BinaryOp::LtEq,
        BinaryOp::Gt,
        BinaryOp::GtEq,
        BinaryOp::And,
        BinaryOp::Or,
    ];
    OPS[rng.below(OPS.len() as u64) as usize]
}

fn expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 {
        return leaf_expr(rng);
    }
    match rng.below(8) {
        0 => leaf_expr(rng),
        1 => Expr::BinaryOp {
            left: Box::new(expr(rng, depth - 1)),
            op: binop(rng),
            right: Box::new(expr(rng, depth - 1)),
        },
        2 => Expr::not(expr(rng, depth - 1)),
        3 => Expr::IsNull {
            expr: Box::new(expr(rng, depth - 1)),
            negated: rng.chance(),
        },
        4 => Expr::Between {
            expr: Box::new(expr(rng, depth - 1)),
            low: Box::new(expr(rng, depth - 1)),
            high: Box::new(expr(rng, depth - 1)),
            negated: false,
        },
        5 => {
            let list = (0..rng.below(3) + 1)
                .map(|_| expr(rng, depth - 1))
                .collect();
            Expr::InList {
                expr: Box::new(expr(rng, depth - 1)),
                list,
                negated: rng.chance(),
            }
        }
        6 => {
            let branches = (0..rng.below(2) + 1)
                .map(|_| (expr(rng, depth - 1), expr(rng, depth - 1)))
                .collect();
            let else_expr = if rng.chance() {
                Some(Box::new(expr(rng, depth - 1)))
            } else {
                None
            };
            Expr::Case {
                branches,
                else_expr,
            }
        }
        _ => {
            const FUNCS: [&str; 5] = ["sum", "min", "max", "coalesce", "abs"];
            let name = FUNCS[rng.below(FUNCS.len() as u64) as usize];
            let args: Vec<Expr> = (0..rng.below(2) + 1)
                .map(|_| expr(rng, depth - 1))
                .collect();
            Expr::func(name, args)
        }
    }
}

fn select(rng: &mut Rng) -> Select {
    let projection = (0..rng.below(3) + 1)
        .map(|_| SelectItem::Expr {
            expr: expr(rng, 3),
            alias: if rng.chance() { Some(ident(rng)) } else { None },
        })
        .collect();
    // Distinct binding names keep the FROM clause valid.
    let from = (0..rng.below(2) + 1)
        .map(|i| TableRef::Table {
            name: format!("{}_{i}", ident(rng)),
            alias: if rng.chance() {
                Some(format!("{}_{i}", ident(rng)))
            } else {
                None
            },
        })
        .collect();
    Select {
        distinct: rng.chance(),
        projection,
        from,
        selection: if rng.chance() {
            Some(expr(rng, 3))
        } else {
            None
        },
        group_by: Vec::new(),
        having: None,
    }
}

fn query(rng: &mut Rng) -> Query {
    Query {
        ctes: Vec::new(),
        body: SetExpr::Select(Box::new(select(rng))),
        order_by: (0..rng.below(3))
            .map(|_| OrderByItem {
                expr: expr(rng, 2),
                desc: rng.chance(),
            })
            .collect(),
        limit: if rng.chance() {
            Some(rng.below(1000))
        } else {
            None
        },
    }
}

#[test]
fn expressions_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xE546_0000 + case);
        let e = expr(&mut rng, 4);
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse {printed:?} (case {case}): {err}"));
        assert_eq!(reparsed, e, "printed (case {case}): {printed}");
    }
}

#[test]
fn queries_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0EE6_0000 + case);
        let q = query(&mut rng);
        let printed = q.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|err| panic!("failed to re-parse {printed:?} (case {case}): {err}"));
        assert_eq!(reparsed, q, "printed (case {case}): {printed}");
    }
}

#[test]
fn printing_is_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xDE7E_0000 + case);
        let e = expr(&mut rng, 4);
        assert_eq!(e.to_string(), e.to_string());
    }
}
