//! Fuzz smoke test: ~1k seeded random mutations and truncations of valid
//! SQL, each driven through the full parse → rewrite → plan pipeline.
//! Every outcome must be `Ok` or a structured `Err` — never a panic — and
//! the pipeline must keep working afterwards.
//!
//! The generator is a deterministic xorshift64* (no property-testing
//! framework; the workspace builds offline), so any failure reproduces
//! exactly from the printed iteration seed.

use std::panic::{catch_unwind, AssertUnwindSafe};

use conquer_core::{rewrite, ConstraintSet, RewriteOptions};
use conquer_engine::{Database, ExecOptions};
use conquer_sql::parse_query;

const ITERATIONS: u64 = 1_000;

/// Minimal deterministic RNG (xorshift64*), local to this test.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        Rng(z.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seed corpus: the query shapes the stack actually handles, over the
/// fixture tables below.
const CORPUS: &[&str] = &[
    "select custkey from customer where acctbal > 1000",
    "select c.custkey, o.orderkey from customer c join orders o on c.custkey = o.custfk",
    "select custfk, count(*), sum(total) from orders group by custfk having count(*) > 1",
    "select distinct custkey from customer order by custkey limit 5",
    "with cand as (select custkey from customer where acctbal > 0) \
     select cand.custkey from cand, orders o where cand.custkey = o.custfk",
    "select o.orderkey from orders o where exists \
     (select 1 from customer c where c.custkey = o.custfk and c.acctbal > 500)",
    "select custkey from customer union all select custfk from orders",
    "select case when acctbal > 0 then 'pos' else 'neg' end from customer",
    "select orderkey from orders where odate >= date '1995-01-01'",
    "select -acctbal, abs(acctbal), acctbal / 2, acctbal % 3 from customer",
];

/// Bytes spliced into mutants: SQL punctuation, quotes, digits, NULs,
/// and multi-byte UTF-8 fragments (both whole and split scalars).
const NOISE: &[u8] = b"'\"();,.*%-+/<>= \t\n0x9\xc3\xa9\xf0\x9f\x92\x96\xff\x00se";

/// Produce one mutant: start from a corpus entry (or raw noise) and apply
/// a few byte-level edits, then re-validate UTF-8 lossily so truncations
/// can split multi-byte scalars without producing an invalid `&str`.
fn mutant(rng: &mut Rng) -> String {
    let mut bytes: Vec<u8> = if rng.below(12) == 0 {
        (0..rng.below(64))
            .map(|_| NOISE[rng.below(NOISE.len())])
            .collect()
    } else {
        CORPUS[rng.below(CORPUS.len())].as_bytes().to_vec()
    };
    for _ in 0..rng.below(6) {
        match rng.below(4) {
            // Truncate at an arbitrary byte offset.
            0 => bytes.truncate(rng.below(bytes.len() + 1)),
            // Overwrite one byte with noise.
            1 if !bytes.is_empty() => {
                let at = rng.below(bytes.len());
                bytes[at] = NOISE[rng.below(NOISE.len())];
            }
            // Insert a noise byte.
            2 => {
                let at = rng.below(bytes.len() + 1);
                bytes.insert(at, NOISE[rng.below(NOISE.len())]);
            }
            // Duplicate a random slice (token stutter).
            _ if !bytes.is_empty() => {
                let a = rng.below(bytes.len());
                let b = (a + rng.below(8) + 1).min(bytes.len());
                let slice: Vec<u8> = bytes[a..b].to_vec();
                let at = rng.below(bytes.len() + 1);
                for (k, byte) in slice.into_iter().enumerate() {
                    bytes.insert(at + k, byte);
                }
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

fn fixture() -> Database {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         create table orders (orderkey integer, custfk text, total float, odate date);
         insert into customer values ('c1', 100.0), ('c2', -5.0);
         insert into orders values (1, 'c1', 10.0, date '1995-06-01');",
    )
    .expect("fixture");
    db
}

#[test]
fn mutated_sql_never_panics_through_parse_rewrite_plan() {
    let db = fixture();
    let sigma = ConstraintSet::new()
        .with_key("customer", ["custkey"])
        .with_key("orders", ["orderkey"]);
    let options = ExecOptions::default();

    let mut rng = Rng::new(0xC0F_FEE);
    let mut parsed_ok = 0u64;
    for i in 0..ITERATIONS {
        let sql = mutant(&mut rng);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let Ok(query) = parse_query(&sql) else {
                return false; // structured parse error: fine
            };
            // Both downstream stages must also be panic-free; their
            // structured errors are all acceptable outcomes.
            let _ = rewrite(&query, &sigma, &RewriteOptions::default());
            let _ = db.plan(&query, &options);
            true
        }));
        match outcome {
            Ok(parsed) => parsed_ok += u64::from(parsed),
            Err(_) => panic!("iteration {i} panicked on input: {sql:?}"),
        }
    }
    // The mutator keeps most corpus-derived inputs lightly damaged, so a
    // healthy fraction should still parse — proves the pipeline stages
    // after parsing are actually exercised.
    assert!(
        parsed_ok > ITERATIONS / 20,
        "only {parsed_ok}/{ITERATIONS} mutants parsed; generator too destructive"
    );

    // And the stack still works after the storm.
    let q = parse_query(CORPUS[0]).expect("corpus parses");
    assert!(db.plan(&q, &options).is_ok());
}

/// Rows as sorted strings: join reordering and build-side swaps may
/// legitimately permute unordered output, so compare as multisets.
fn sorted_rows(rows: &conquer_engine::Rows) -> Vec<Vec<String>> {
    let mut v: Vec<Vec<String>> = rows
        .rows
        .iter()
        .map(|r| r.iter().map(ToString::to_string).collect())
        .collect();
    v.sort();
    v
}

/// Differential: every fuzz case that parses must produce the same result
/// with cost-based planning on and off (`ExecOptions::use_stats`). This is
/// the repair-oracle pattern from `tests/oracle_equivalence.rs` applied to
/// the optimizer: the syntactic seed planner is the oracle, the
/// statistics-driven planner (join reordering, build-side swaps,
/// selectivity-gated right-side pushes, CTE pruning) is under test.
#[test]
fn fuzz_cases_agree_with_and_without_cost_based_planning() {
    let db = fixture();
    let stats_on = ExecOptions::default().with_threads(1);
    let mut stats_off = stats_on.clone();
    stats_off.use_stats = false;

    let mut rng = Rng::new(0x5EED_CAFE);
    let mut compared = 0u64;
    // The full corpus verbatim, then the mutant storm on top.
    let cases = CORPUS
        .iter()
        .map(|s| (*s).to_string())
        .chain((0..ITERATIONS).map(|_| mutant(&mut rng)));
    for (i, sql) in cases.enumerate() {
        let Ok(query) = parse_query(&sql) else {
            continue;
        };
        let on = db.query_with(&sql, &stats_on);
        let off = db.query_with(&sql, &stats_off);
        match (on, off) {
            (Ok(a), Ok(b)) => {
                if query.limit.is_some() {
                    // LIMIT without a total order may keep different rows
                    // under a different join order; the count is invariant.
                    assert_eq!(
                        a.rows.len(),
                        b.rows.len(),
                        "case {i}: row count diverged under LIMIT: {sql:?}"
                    );
                } else {
                    assert_eq!(
                        sorted_rows(&a),
                        sorted_rows(&b),
                        "case {i}: stats-on vs stats-off diverged: {sql:?}"
                    );
                }
                compared += 1;
            }
            (Err(_), Err(_)) => {}
            (on, off) => panic!(
                "case {i}: planners disagree on success (stats-on ok={}, stats-off ok={}): {sql:?}",
                on.is_ok(),
                off.is_ok()
            ),
        }
    }
    assert!(
        compared >= CORPUS.len() as u64,
        "only {compared} cases executed on both planners; differential too weak"
    );
}

#[test]
fn truncations_of_every_corpus_entry_never_panic() {
    let db = fixture();
    let options = ExecOptions::default();
    for sql in CORPUS {
        let bytes = sql.as_bytes();
        for cut in 0..bytes.len() {
            let s = String::from_utf8_lossy(&bytes[..cut]);
            if let Ok(q) = parse_query(&s) {
                let _ = db.plan(&q, &options);
            }
        }
    }
}
