//! Index invalidation races over real loopback sockets: sessions racing
//! `INSERT` and `DROP TABLE`/`CREATE TABLE` scripts against indexed point
//! lookups must never see a wrong answer, a stale index, or a dead
//! session — only clean results or structured server errors (an unknown
//! table inside a drop/recreate window, admission `busy`).
//!
//! The invariant is self-checking: every row ever inserted satisfies
//! `v = k * 10`, so any lookup that gathers through stale postings (an
//! index surviving a drop, or missing an insert's extension) surfaces as
//! a row whose `v` disagrees with its `k`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_serve::{serve, Client, ClientError, ServerConfig};

const SEED_ROWS: &str = "insert into t values (1, 10), (2, 20), (3, 30), (5, 50), (5, 50)";

fn create_and_seed(client: &mut Client) {
    // `create index` over the wire: a drop kills the declaration with the
    // table, so every recreate re-declares to keep indexed plans in play.
    client
        .script(&format!(
            "create table t (k integer, v integer); create index on t (k); {SEED_ROWS}"
        ))
        .unwrap();
}

#[test]
fn indexed_lookups_stay_correct_under_ddl_and_dml_churn() {
    let db = Arc::new(Database::new());
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let server = serve(
        db,
        sigma,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_concurrent: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.addr();

    let mut setup = Client::connect(addr).unwrap();
    create_and_seed(&mut setup);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut successes = 0u64;
                while !stop.load(Ordering::Acquire) {
                    for sql in [
                        "select k, v from t where k = 5",
                        "select k, v from t where k >= 2 and k <= 3",
                        "select a.k, a.v, b.v from t a, t b where a.k = b.k",
                    ] {
                        match client.query(sql) {
                            Ok(out) => {
                                successes += 1;
                                for row in &out.rows.rows {
                                    let k = row[0].to_string().parse::<i64>().unwrap();
                                    for v in &row[1..] {
                                        assert_eq!(
                                            v.to_string().parse::<i64>().unwrap(),
                                            k * 10,
                                            "stale or wrong index postings: {sql} -> {row:?}"
                                        );
                                    }
                                }
                            }
                            // A drop/recreate window or admission pressure
                            // surfaces as a *structured* error; transport
                            // or protocol failures mean the session died.
                            Err(ClientError::Server { .. }) => {}
                            Err(other) => panic!("session died mid-race: {other}"),
                        }
                    }
                }
                successes
            })
        })
        .collect();

    // Writer: extend the table (index maintenance under INSERT) and
    // periodically drop/recreate it (declaration death + re-declare via
    // fresh DDL), all over the wire.
    let mut writer = Client::connect(addr).unwrap();
    for i in 0..60u64 {
        let k = (i % 9) as i64;
        writer
            .script(&format!("insert into t values ({k}, {}), (5, 50)", k * 10))
            .unwrap();
        if i % 20 == 19 {
            writer.script("drop table t").unwrap();
            create_and_seed(&mut writer);
        }
    }
    stop.store(true, Ordering::Release);
    let successes: u64 = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(
        successes > 0,
        "readers must complete queries during the churn"
    );

    // Quiesced, the indexed answers match a fresh oracle count.
    let out = setup.query("select count(*) from t where k = 5").unwrap();
    assert_eq!(out.rows.rows[0][0].to_string(), "2");
    server.shutdown();
    server.wait();
}
