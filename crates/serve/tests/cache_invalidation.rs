//! Catalog-epoch invalidation through the server: cached plans embed table
//! snapshots (and materialized CTEs), so serving a stale plan after a
//! catalog change would silently return old data. These tests drive the
//! server over loopback and check that prepared statements and cached
//! queries always reflect post-mutation state — stale plans are never
//! served — including across sessions.

use std::sync::Arc;

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_obs::Json;
use conquer_serve::{serve, Client, ServerConfig, ServerHandle, Strategy};

fn start() -> ServerHandle {
    let db = Database::new();
    db.run_script(
        "create table account (k text, bal float);
         insert into account values
             ('a1', 100), ('a1', 900), ('a2', 250), ('a3', 400);",
    )
    .expect("seed");
    let sigma = ConstraintSet::new().with_key("account", ["k"]);
    serve(Arc::new(db), sigma, ServerConfig::default()).expect("bind")
}

const COUNT: &str = "select count(*) from account";

fn count_of(client: &mut Client, outcome: conquer_serve::QueryOutcome) -> i64 {
    let _ = client;
    match &outcome.rows.rows[0][0] {
        conquer_engine::Value::Int(v) => *v,
        other => panic!("count(*) returned {other:?}"),
    }
}

#[test]
fn prepared_statement_replans_after_epoch_bump() {
    let server = start();
    let mut client = Client::connect(server.addr()).expect("connect");

    let stmt = client
        .prepare(COUNT, Some(Strategy::Original))
        .expect("prepare");
    let before = client.execute(stmt).expect("execute");
    let before_count = count_of(&mut client, before);

    client
        .script("insert into account values ('a9', 5000)")
        .expect("script");

    // The bound plan is stale; the server must rebuild, not serve it.
    let after = client.execute(stmt).expect("re-execute");
    assert_eq!(
        count_of(&mut client, after),
        before_count + 1,
        "prepared statement served a stale plan after a catalog change"
    );

    let stats = client.stats().expect("stats");
    let invalidations = stats
        .get("cache")
        .and_then(|c| c.get("invalidations"))
        .and_then(Json::as_f64)
        .expect("invalidations counter");
    assert!(invalidations >= 1.0, "epoch bump must invalidate the entry");

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn query_cache_never_serves_stale_rewritten_answers() {
    let server = start();
    let mut client = Client::connect(server.addr()).expect("connect");
    let sql = "select k from account where bal > 300";

    // Warm the cache under the rewriting, then mutate, then re-ask.
    let cold = client
        .query_with(sql, Some(Strategy::Rewritten))
        .expect("cold");
    assert!(!cold.cached);
    let warm = client
        .query_with(sql, Some(Strategy::Rewritten))
        .expect("warm");
    assert!(warm.cached, "second run should hit the cache");

    // a3 gains a conflicting duplicate: it stops being a certain answer.
    client
        .script("insert into account values ('a3', 10)")
        .expect("script");
    let fresh = client
        .query_with(sql, Some(Strategy::Rewritten))
        .expect("fresh");
    assert!(!fresh.cached, "epoch bump must force a rebuild");
    let keys: Vec<String> = fresh
        .rows
        .rows
        .iter()
        .map(|row| format!("{:?}", row[0]))
        .collect();
    assert!(
        !keys.iter().any(|k| k.contains("a3")),
        "stale cached plan: a3 is no longer a consistent answer, got {keys:?}"
    );

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn invalidation_is_visible_across_sessions() {
    let server = start();
    let mut preparer = Client::connect(server.addr()).expect("connect preparer");
    let mut mutator = Client::connect(server.addr()).expect("connect mutator");

    let stmt = preparer
        .prepare(COUNT, Some(Strategy::Original))
        .expect("prepare");
    let before = preparer.execute(stmt).expect("execute");
    let before_count = count_of(&mut preparer, before);

    // A *different* session mutates the catalog.
    mutator
        .script("insert into account values ('a8', 1), ('a7', 2)")
        .expect("script");

    let after = preparer.execute(stmt).expect("re-execute");
    assert_eq!(
        count_of(&mut preparer, after),
        before_count + 2,
        "epoch bump from another session must invalidate this session's statement"
    );

    preparer.quit().expect("quit");
    mutator.quit().expect("quit");
    server.shutdown();
}
