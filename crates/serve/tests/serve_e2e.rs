//! End-to-end tests over real loopback sockets: a 16-connection closed
//! loop checked bit-for-bit against in-process execution, cache hit rate
//! after warmup, session options, prepared statements, protocol errors,
//! and the session cap.

use std::sync::Arc;
use std::time::Duration;

use conquer_core::ConstraintSet;
use conquer_engine::{Database, ExecOptions};
use conquer_obs::Json;
use conquer_serve::cache::build_statement;
use conquer_serve::protocol::rows_to_json;
use conquer_serve::{serve, Client, ServerConfig, ServerHandle, Strategy};

/// An inconsistent two-table database: customers keyed by ckey and orders
/// keyed by okey, with injected key violations in both.
fn seed_script() -> String {
    let mut sql = String::from(
        "create table customer (ckey text, name text, nation text);
         create table orders (okey text, cust text, price float, qty int);\n",
    );
    sql.push_str("insert into customer values\n");
    for i in 0..60 {
        let nation = ["fr", "de", "jp"][i % 3];
        sql.push_str(&format!("('c{i}', 'name{i}', '{nation}'),\n"));
    }
    // Key violations: conflicting duplicates for every tenth customer.
    for i in (0..60).step_by(10) {
        let sep = if i + 10 < 60 { "," } else { ";" };
        sql.push_str(&format!("('c{i}', 'dup{i}', 'us'){sep}\n"));
    }
    sql.push_str("insert into orders values\n");
    for i in 0..90 {
        let cust = i % 60;
        let price = (i * 17 % 400) as f64 + 0.25;
        sql.push_str(&format!("('o{i}', 'c{cust}', {price}, {}),\n", i % 7 + 1));
    }
    for i in (0..90).step_by(15) {
        let sep = if i + 15 < 90 { "," } else { ";" };
        sql.push_str(&format!("('o{i}', 'c{}', 999.5, 9){sep}\n", (i + 3) % 60));
    }
    sql
}

fn seed() -> (Arc<Database>, ConstraintSet) {
    let db = Database::new();
    db.run_script(&seed_script()).expect("seed script");
    let sigma = ConstraintSet::new()
        .with_key("customer", ["ckey"])
        .with_key("orders", ["okey"]);
    (Arc::new(db), sigma)
}

fn start(config: ServerConfig) -> (ServerHandle, Arc<Database>, ConstraintSet) {
    let (db, sigma) = seed();
    let server = serve(Arc::clone(&db), sigma.clone(), config).expect("bind loopback");
    (server, db, sigma)
}

/// The closed-loop workload: selections, a key join, and an aggregation,
/// each run both as written and under the ConQuer rewriting.
const QUERIES: &[&str] = &[
    "select ckey from customer where nation = 'fr'",
    "select ckey, name from customer where nation = 'de'",
    "select o.okey from orders o, customer c where o.cust = c.ckey and c.nation = 'jp'",
    "select cust, count(*) from orders group by cust",
    "select cust, sum(price) from orders group by cust",
    "select okey from orders where price > 300",
];
const STRATEGIES: &[Strategy] = &[Strategy::Original, Strategy::Rewritten];

/// Canonical encoding of a result set — the same JSON the wire uses, so
/// equality here is exactly the protocol's bit-identity claim.
fn canon(rows: &conquer_engine::Rows) -> String {
    rows_to_json(rows).render()
}

#[test]
fn sixteen_connection_closed_loop_matches_in_process_execution() {
    let (server, db, sigma) = start(ServerConfig {
        max_concurrent: 8,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    // Expected answers via the identical in-process pipeline, serially.
    let options = ExecOptions {
        threads: 1,
        ..ExecOptions::default()
    };
    let mut expected = Vec::new();
    for sql in QUERIES {
        for &strategy in STRATEGIES {
            let stmt =
                build_statement(&db, &sigma, sql, strategy, &options).expect("in-process build");
            let rows = db
                .execute_plan_with(&stmt.plan, &options)
                .expect("in-process execute");
            expected.push(((*sql, strategy), canon(&rows)));
        }
    }
    let expected = Arc::new(expected);

    const ROUNDS: usize = 8;
    std::thread::scope(|scope| {
        for worker in 0..16 {
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.set("threads", Json::UInt(1)).expect("set threads");
                for round in 0..ROUNDS {
                    // Stagger start points so workers don't run in lockstep.
                    for step in 0..expected.len() {
                        let ((sql, strategy), want) =
                            &expected[(worker + round + step) % expected.len()];
                        let outcome = loop {
                            match client.query_with(sql, Some(*strategy)) {
                                Ok(outcome) => break outcome,
                                Err(e) if e.is_busy() => {
                                    std::thread::sleep(Duration::from_millis(2))
                                }
                                Err(e) => panic!("worker {worker}: {sql}: {e}"),
                            }
                        };
                        assert_eq!(
                            &canon(&outcome.rows),
                            want,
                            "worker {worker} round {round}: `{sql}` ({}) diverged from \
                             in-process execution",
                            strategy.label()
                        );
                    }
                }
                client.quit().expect("quit");
            });
        }
    });

    // ≥90% hit rate after warmup: 16 workers × 8 rounds × 12 statements,
    // only the first build of each (sql, strategy) should miss.
    let mut client = Client::connect(addr).expect("stats connect");
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Json::as_f64).expect("hits");
    let misses = cache.get("misses").and_then(Json::as_f64).expect("misses");
    let hit_rate = hits / (hits + misses);
    assert!(
        hit_rate >= 0.9,
        "cache hit rate {hit_rate:.3} below 0.9 ({hits} hits / {misses} misses)"
    );
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn set_options_shape_execution() {
    let (server, _db, _sigma) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    // A row limit trips with the structured code...
    client.set("max_rows", Json::UInt(3)).expect("set max_rows");
    let err = client
        .query("select okey from orders")
        .expect_err("row limit should trip");
    match &err {
        conquer_serve::ClientError::Server { code, .. } => {
            assert_eq!(*code, conquer_serve::ErrorCode::RowLimit)
        }
        other => panic!("expected a row-limit server error, got {other}"),
    }
    // ...and clearing it (0) restores full results.
    client
        .set("max_rows", Json::UInt(0))
        .expect("clear max_rows");
    let all = client.query("select okey from orders").expect("query");
    assert!(all.rows.rows.len() > 3);

    // The session strategy changes what a bare query means.
    let original = client.query("select ckey from customer").expect("original");
    client
        .set("strategy", Json::Str("rewritten".into()))
        .expect("set strategy");
    let rewritten = client
        .query("select ckey from customer")
        .expect("rewritten");
    assert!(
        rewritten.rows.rows.len() < original.rows.rows.len(),
        "the rewriting must drop key-violating duplicates"
    );

    // Unknown options and bad values are protocol errors, session intact.
    for (name, value) in [
        ("no_such_option", Json::UInt(1)),
        ("threads", Json::Str("many".into())),
        ("strategy", Json::Str("fastest".into())),
    ] {
        let err = client.set(name, value).expect_err("bad set");
        match err {
            conquer_serve::ClientError::Server { code, .. } => {
                assert_eq!(code, conquer_serve::ErrorCode::Protocol)
            }
            other => panic!("expected protocol error, got {other}"),
        }
    }
    client.ping().expect("session survives bad SETs");
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn prepared_statements_roundtrip() {
    let (server, _db, _sigma) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    let sql = "select ckey from customer where nation = 'fr'";
    let id = client
        .prepare(sql, Some(Strategy::Rewritten))
        .expect("prepare");
    let first = client.execute(id).expect("execute");
    let second = client.execute(id).expect("re-execute");
    assert_eq!(canon(&first.rows), canon(&second.rows));
    assert!(second.cached, "second execute must come from the cache");

    client.close_statement(id).expect("close");
    let err = client.execute(id).expect_err("closed statement");
    match err {
        conquer_serve::ClientError::Server { code, .. } => {
            assert_eq!(code, conquer_serve::ErrorCode::UnknownStatement)
        }
        other => panic!("expected unknown_statement, got {other}"),
    }
    client.quit().expect("quit");
    server.shutdown();
}

/// Cache entries are shared across sessions, so statements are *built*
/// under the server-level build options, not the requesting session's
/// `SET` limits — a session with a 1-byte memory budget can still prepare
/// a rewritten statement (whose build materializes CTEs); its limits
/// govern execution only.
#[test]
fn session_limits_do_not_shape_cache_builds() {
    let (server, db, sigma) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");
    let sql = "select ckey from customer where nation = 'fr'";

    // Sanity: this build genuinely exceeds a 1-byte budget, so the prepare
    // below can only succeed via the server-level options.
    let mut tiny = ExecOptions::default();
    tiny.limits.max_memory_bytes = Some(1);
    assert!(
        build_statement(&db, &sigma, sql, Strategy::Rewritten, &tiny).is_err(),
        "expected the rewritten build to trip a 1-byte memory budget"
    );

    client
        .set("mem_limit", Json::UInt(1))
        .expect("set mem_limit");
    let id = client
        .prepare(sql, Some(Strategy::Rewritten))
        .expect("prepare must build under server options, not the session's 1-byte budget");
    client
        .set("mem_limit", Json::UInt(0))
        .expect("clear mem_limit");
    let served = client.execute(id).expect("execute");

    // The shared entry answers exactly like in-process execution.
    let reference = build_statement(
        &db,
        &sigma,
        sql,
        Strategy::Rewritten,
        &ExecOptions::default(),
    )
    .expect("in-process build");
    let expected = db
        .execute_plan_with(&reference.plan, &ExecOptions::default())
        .expect("in-process execute");
    assert_eq!(canon(&served.rows), canon(&expected));

    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn protocol_and_parse_errors_are_structured() {
    let (server, _db, _sigma) = start(ServerConfig::default());
    let mut client = Client::connect(server.addr()).expect("connect");

    // Unknown request op: structured protocol error, session stays up.
    let resp = client
        .roundtrip(&conquer_serve::Request::Query {
            sql: "select ckey from".to_string(), // malformed SQL
            strategy: Some(Strategy::Original),
        })
        .expect_err("parse error");
    match resp {
        conquer_serve::ClientError::Server { code, .. } => {
            assert_eq!(code, conquer_serve::ErrorCode::Parse)
        }
        other => panic!("expected parse error, got {other}"),
    }

    // Non-tree queries are rejected by the rewriting with `rewrite`.
    let err = client
        .query_with(
            "select a.ckey from customer a, customer b where a.name = b.name",
            Some(Strategy::Rewritten),
        )
        .expect_err("non-tree query");
    match err {
        conquer_serve::ClientError::Server { code, .. } => {
            assert_eq!(code, conquer_serve::ErrorCode::Rewrite)
        }
        other => panic!("expected rewrite error, got {other}"),
    }

    client.ping().expect("session survives structured errors");
    client.quit().expect("quit");
    server.shutdown();
}

#[test]
fn session_cap_greets_with_busy() {
    let (server, _db, _sigma) = start(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    });
    let first = Client::connect(server.addr()).expect("first connect");
    let err = Client::connect(server.addr()).expect_err("second connect should be rejected");
    assert!(err.is_busy(), "expected busy greeting, got {err}");
    drop(first);
    // The slot frees once the first session ends.
    let mut retry = None;
    for _ in 0..200 {
        match Client::connect(server.addr()) {
            Ok(client) => {
                retry = Some(client);
                break;
            }
            Err(e) if e.is_busy() => std::thread::sleep(Duration::from_millis(5)),
            Err(e) => panic!("connect: {e}"),
        }
    }
    retry
        .expect("slot freed after disconnect")
        .quit()
        .expect("quit");
    server.shutdown();
}
