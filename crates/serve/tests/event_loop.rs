//! Event-loop serving mode: the structural disconnect fix, accept-path
//! liveness against non-reading peers, post-`wait()` quiescence, and the
//! 256-connection soak with a thread census and a wire-identity
//! differential against the thread-per-connection fallback.

use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_obs::Json;
use conquer_serve::protocol::{read_frame, rows_to_json, write_frame};
use conquer_serve::{serve, Client, Request, ServerConfig, ServerHandle, Strategy};

/// Serialize the tests in this binary: the thread census reads
/// `/proc/self/task`, which sees every thread of the process, so two tests
/// running servers concurrently would pollute each other's counts.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

/// Names of this process's live `conquer-*` threads, via each task's
/// `comm` (truncated to 15 bytes by the kernel, which preserves the
/// prefix we filter on).
fn conquer_threads() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            let comm = std::fs::read_to_string(task.path().join("comm")).unwrap_or_default();
            let comm = comm.trim();
            if comm.starts_with("conquer-") {
                names.push(comm.to_string());
            }
        }
    }
    names
}

/// Same long-running, low-memory query the overload suite uses: a
/// non-equality correlated EXISTS that can't short-circuit.
const SLOW: &str = "select count(*) from big a \
                    where exists (select b.v from big b, big c where b.v + c.v + a.v < 0)";

fn start_big(rows: usize, config: ServerConfig) -> ServerHandle {
    let db = Database::new();
    db.run_script("create table big (k text, v int)").expect("create");
    let mut insert = String::from("insert into big values ");
    for i in 0..rows {
        let sep = if i + 1 < rows { "," } else { ";" };
        insert.push_str(&format!("('k{i}', {i}){sep}"));
    }
    db.run_script(&insert).expect("insert");
    let sigma = ConstraintSet::new().with_key("big", ["k"]);
    serve(Arc::new(db), sigma, config).expect("bind")
}

fn wait_for_in_flight(client: &mut Client, want: u64, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let stats = client.stats().expect("stats");
        let in_flight = stats
            .get("admission")
            .and_then(|a| a.get("in_flight"))
            .and_then(Json::as_f64)
            .expect("in_flight gauge") as u64;
        if in_flight == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

/// **The regression the event loop exists to fix.** A client pipelines an
/// extra frame behind a slow query and then disconnects. Under the PR-4
/// watchdog the queued bytes make `peek` return `Ok(n)` forever — the FIN
/// behind them is invisible (`session.rs`'s `Ok(_)` arm just sleeps), so
/// the query is never cancelled and burns its full runtime holding the
/// admission slot. The event loop drains the socket, so the FIN surfaces
/// as `read() == 0` regardless of what preceded it: the in-flight query
/// must be cancelled and `serve.disconnect_cancel` must tick within the
/// governor's cooperative check interval, not the query's natural runtime.
#[test]
fn pipelined_disconnect_is_seen_through_queued_bytes() {
    let _guard = serial();
    let server = start_big(
        128,
        ServerConfig {
            max_concurrent: 1,
            queue_wait: Duration::from_millis(100),
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let registry = conquer_obs::registry();

    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let hello = read_frame(&mut raw).expect("hello frame").expect("hello");
    assert!(hello.get("session").is_some());

    // One burst: the slow query plus a pipelined ping that will still be
    // sitting unread in the server-side buffer at disconnect time — the
    // exact bytes that blind the fallback watchdog's peek.
    let slow = Request::Query {
        sql: SLOW.to_string(),
        strategy: Some(Strategy::Original),
    };
    write_frame(&mut raw, &slow.to_json()).expect("send slow");
    write_frame(&mut raw, &Request::Ping.to_json()).expect("send pipelined ping");

    let mut observer = Client::connect(addr).expect("connect observer");
    assert!(
        wait_for_in_flight(&mut observer, 1, Duration::from_secs(10)),
        "slow query never became in-flight"
    );
    let cancels_before = registry.counter("serve.disconnect_cancel").get();
    let trips_before = registry.counter("governor.trip.cancelled").get();

    drop(raw); // disconnect with the ping still queued server-side

    assert!(
        wait_for_in_flight(&mut observer, 0, Duration::from_secs(5)),
        "in-flight query survived a disconnect hidden behind pipelined bytes"
    );
    assert!(
        registry.counter("serve.disconnect_cancel").get() > cancels_before,
        "disconnect was never detected (peek-style blind spot?)"
    );
    assert!(
        registry.counter("governor.trip.cancelled").get() > trips_before,
        "the engine never unwound through the cancellation token"
    );
    observer.quit().expect("quit");
    server.shutdown();
}

/// Peers that connect and never read a byte — neither the greeting nor
/// the over-capacity `busy` frame — must not wedge the accept path for
/// clients that behave.
#[test]
fn non_reading_clients_do_not_wedge_the_accept_path() {
    let _guard = serial();
    let server = start_big(
        16,
        ServerConfig {
            max_sessions: 6,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();

    // Four sessions held by clients that never read their greeting, then a
    // pile of over-capacity connects that never read their rejection.
    let holders: Vec<TcpStream> = (0..4)
        .map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("holder {i}: {e}")))
        .collect();
    let mut over_cap = Vec::new();
    for _ in 0..10 {
        // Some of these take the remaining session slots (where they hold
        // an unread greeting), the rest hit the rejection path.
        over_cap.push(TcpStream::connect(addr).expect("over-cap connect"));
    }
    std::thread::sleep(Duration::from_millis(100));

    // A well-behaved client must still get through promptly. Freeing the
    // over-capacity sockets first guarantees a slot regardless of how many
    // of them landed as sessions.
    drop(over_cap);
    let asked = Instant::now();
    let mut client = loop {
        match Client::connect(addr) {
            Ok(client) => break client,
            Err(_) => {
                assert!(
                    asked.elapsed() < Duration::from_secs(10),
                    "accept path wedged: no session slot freed after dropping over-cap conns"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    };
    let outcome = client
        .query_with("select v from big where v = 1", Some(Strategy::Original))
        .expect("query on a server with non-reading peers");
    assert_eq!(outcome.rows.rows.len(), 1);
    assert!(
        asked.elapsed() < Duration::from_secs(10),
        "round trip took {:?} with non-reading peers connected",
        asked.elapsed()
    );
    client.quit().expect("quit");
    drop(holders);
    server.shutdown();
}

/// `wait()` returning must mean actual quiescence — zero live sessions and
/// zero server threads — even when shutdown lands while a query is in
/// flight. The PR-4 drain was a bounded sleep-spin that could return with
/// sessions (and their watchdogs) still alive.
fn assert_quiescent_after_wait(io_threads: usize) {
    let server = start_big(
        128,
        ServerConfig {
            max_concurrent: 2,
            io_threads,
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let shared = Arc::clone(server.shared());

    // A query mid-flight at shutdown time, from a raw client that will be
    // force-closed rather than politely quitting.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let _hello = read_frame(&mut raw).expect("hello").expect("frame");
    let slow = Request::Query {
        sql: SLOW.to_string(),
        strategy: Some(Strategy::Original),
    };
    write_frame(&mut raw, &slow.to_json()).expect("send slow");
    let mut observer = Client::connect(addr).expect("observer");
    assert!(
        wait_for_in_flight(&mut observer, 1, Duration::from_secs(10)),
        "slow query never became in-flight"
    );

    server.shutdown();
    server.wait();

    assert_eq!(
        shared.active_sessions(),
        0,
        "wait() returned with sessions still live (mode io_threads={io_threads})"
    );
    let leftovers = conquer_threads();
    assert!(
        leftovers.is_empty(),
        "wait() returned with server threads still running \
         (mode io_threads={io_threads}): {leftovers:?}"
    );
}

#[test]
fn wait_returns_only_after_quiescence_event_mode() {
    let _guard = serial();
    assert_quiescent_after_wait(2);
}

#[test]
fn wait_returns_only_after_quiescence_fallback_mode() {
    let _guard = serial();
    assert_quiescent_after_wait(0);
}

/// The soak: 256 concurrent connections on the event loop, served by a
/// fixed thread topology (census-verified: at most `io_threads + workers +
/// 2` server threads, where thread-per-connection would need 512+), with
/// every response wire-identical to the `io_threads: 0` fallback — the
/// PR-4 design kept one release precisely to be this differential oracle.
#[test]
fn soak_256_connections_wire_identical_with_bounded_threads() {
    let _guard = serial();
    let seed = {
        let mut sql = String::from(
            "create table customer (ckey text, name text, nation text);
             create table orders (okey text, cust text, price float, qty int);\n",
        );
        sql.push_str("insert into customer values\n");
        for i in 0..60 {
            let nation = ["fr", "de", "jp"][i % 3];
            let sep = if i + 1 < 60 { "," } else { ";" };
            sql.push_str(&format!("('c{i}', 'name{i}', '{nation}'){sep}\n"));
        }
        // Key violations so the rewritten strategy has real work to do.
        sql.push_str("insert into customer values\n");
        for i in (0..60).step_by(10) {
            let sep = if i + 10 < 60 { "," } else { ";" };
            sql.push_str(&format!("('c{i}', 'dup{i}', 'us'){sep}\n"));
        }
        sql.push_str("insert into orders values\n");
        for i in 0..90 {
            let cust = i % 60;
            let price = (i * 17 % 400) as f64 + 0.25;
            let sep = if i + 1 < 90 { "," } else { ";" };
            sql.push_str(&format!("('o{i}', 'c{cust}', {price}, {}){sep}\n", i % 7 + 1));
        }
        sql
    };
    let queries = [
        "select ckey from customer where nation = 'fr'",
        "select o.okey from orders o, customer c where o.cust = c.ckey and c.nation = 'jp'",
        "select cust, count(*) from orders group by cust",
        "select okey from orders where price > 300",
    ];
    let strategies = [Strategy::Original, Strategy::Rewritten];
    let sigma = ConstraintSet::new()
        .with_key("customer", ["ckey"])
        .with_key("orders", ["okey"]);
    let start = |io_threads: usize, workers: usize| {
        let db = Database::new();
        db.run_script(&seed).expect("seed");
        serve(
            Arc::new(db),
            sigma.clone(),
            ServerConfig {
                max_sessions: 300,
                max_concurrent: 8,
                io_threads,
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind")
    };
    // Run the full workload over `active` closed-loop connections and
    // return every response in deterministic order.
    let run_workload = |addr: std::net::SocketAddr, active: usize| -> Vec<String> {
        let results = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for worker in 0..active {
                let results = &results;
                let queries = &queries;
                let strategies = &strategies;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("workload connect");
                    for (qi, sql) in queries.iter().enumerate() {
                        for (si, &strategy) in strategies.iter().enumerate() {
                            let outcome = client
                                .query_with(sql, Some(strategy))
                                .expect("workload query");
                            results.lock().expect("results").push((
                                (worker, qi, si),
                                rows_to_json(&outcome.rows).render(),
                            ));
                        }
                    }
                    client.quit().expect("workload quit");
                });
            }
        });
        let mut results = results.into_inner().expect("results");
        results.sort();
        results.into_iter().map(|(_, canon)| canon).collect()
    };

    // Phase A — the differential oracle: thread-per-connection fallback.
    let oracle_server = start(0, 0);
    let oracle = run_workload(oracle_server.addr(), 8);
    oracle_server.shutdown();
    oracle_server.wait();

    // Phase B — the event loop under 256 live connections.
    const IO_THREADS: usize = 2;
    const WORKERS: usize = 4;
    let server = start(IO_THREADS, WORKERS);
    let addr = server.addr();
    let mut idle: Vec<Client> = Vec::new();
    for i in 0..248 {
        idle.push(Client::connect(addr).unwrap_or_else(|e| panic!("idle conn {i}: {e}")));
    }
    // 248 idle + 8 workload = 256 concurrent connections.
    let served = run_workload(addr, 8);
    assert_eq!(
        served, oracle,
        "event-loop responses diverged from the thread-per-connection oracle"
    );

    // Census while all 248 idle connections are still up and no query is
    // in flight (engine worker threads are scoped to a query, and would
    // inherit a `conquer-worker-*` comm if sampled mid-query).
    let threads = conquer_threads();
    assert!(
        !threads.is_empty(),
        "census found no server threads at all — /proc not readable?"
    );
    assert!(
        threads.len() <= IO_THREADS + WORKERS + 2,
        "{} server threads for 256 connections — not a fixed topology: {threads:?}",
        threads.len()
    );

    for client in idle {
        client.quit().expect("idle quit");
    }
    server.shutdown();
    server.wait();
    assert!(
        conquer_threads().is_empty(),
        "threads survived wait() after the soak"
    );
}
