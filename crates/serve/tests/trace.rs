//! End-to-end tracing through the server: every socket query must leave a
//! flight-recorder entry retrievable over the protocol (`trace_recent`,
//! `trace_get`) with non-zero phase totals, cache-hit flags, the planner's
//! cardinality estimate, and — when the engine went parallel — spans from
//! the morsel worker threads. The HTTP exposition endpoint is exercised
//! over a raw `TcpStream` exactly the way an external scraper would.
//!
//! The flight recorder is process-global, so tests in this binary share
//! one ring; every assertion filters by a per-test SQL marker instead of
//! assuming the ring holds only its own queries.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_obs::Json;
use conquer_serve::{serve, Client, ServerConfig, ServerHandle};

/// Rows in the fixture table: enough to clear the engine's parallel
/// threshold so a multi-thread query actually spawns morsel workers.
const ROWS: usize = 10_000;

fn start(metrics: bool) -> ServerHandle {
    let db = Database::new();
    let mut script = String::from("create table big (k int, v int);\ninsert into big values ");
    for i in 0..ROWS {
        if i > 0 {
            script.push(',');
        }
        // Duplicate keys every other row so the key constraint is violated
        // and the rewritten strategy has real work to do.
        script.push_str(&format!("({}, {})", i / 2, i % 97));
    }
    script.push(';');
    db.run_script(&script).expect("seed fixture");
    let sigma = ConstraintSet::new().with_key("big", ["k"]);
    let config = ServerConfig {
        metrics_addr: metrics.then(|| "127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    serve(Arc::new(db), sigma, config).expect("bind")
}

fn as_u64(json: &Json) -> u64 {
    json.as_f64().expect("numeric json value") as u64
}

fn str_of(json: &Json) -> &str {
    match json {
        Json::Str(s) => s,
        other => panic!("expected string, got {other:?}"),
    }
}

/// `trace_recent` entries whose SQL contains `marker`, newest first.
fn traces_matching(client: &mut Client, marker: &str) -> Vec<Json> {
    let dump = client.trace_recent(Some(100)).expect("trace_recent");
    let Some(Json::Arr(traces)) = dump.get("traces") else {
        panic!("trace_recent missing traces array: {dump:?}");
    };
    traces
        .iter()
        .filter(|t| t.get("sql").is_some_and(|s| str_of(s).contains(marker)))
        .cloned()
        .collect()
}

#[test]
fn socket_queries_are_retrievable_with_phase_totals_and_worker_spans() {
    let server = start(false);
    let mut client = Client::connect(server.addr()).expect("connect");
    client.set("threads", Json::UInt(4)).expect("set threads");

    // The marker makes this SQL unique to this test within the shared ring.
    let sql = "select v, count(*) from big where v < 9001 group by v order by v";
    let first = client.query(sql).expect("first run");
    assert!(!first.rows.rows.is_empty());
    assert!(!first.cached, "first run must be a cache miss");
    let second = client.query(sql).expect("second run");
    assert!(second.cached, "second run must be a cache hit");

    let matching = traces_matching(&mut client, "9001");
    assert_eq!(matching.len(), 2, "both runs recorded: {matching:?}");
    // Newest first: [0] is the cached re-run, [1] the cold run.
    assert_eq!(matching[0].get("cached"), Some(&Json::Bool(true)));
    assert_eq!(matching[1].get("cached"), Some(&Json::Bool(false)));
    for trace in &matching {
        assert_eq!(str_of(trace.get("status").expect("status")), "ok");
        assert_eq!(str_of(trace.get("strategy").expect("strategy")), "original");
        assert_eq!(as_u64(trace.get("threads").expect("threads")), 4);
        assert_eq!(
            as_u64(trace.get("rows_out").expect("rows_out")),
            first.rows.rows.len() as u64
        );
        assert!(
            trace.get("start_unix_ms").is_some_and(|v| as_u64(v) > 0),
            "wall-clock anchor missing: {trace:?}"
        );
        let Some(Json::Obj(phases)) = trace.get("phase_us") else {
            panic!("phase_us missing: {trace:?}");
        };
        assert!(
            phases
                .iter()
                .any(|(name, us)| name == "execute" && as_u64(us) > 0),
            "execute phase total must be non-zero: {phases:?}"
        );
        // Planner estimate vs actual: stats are on by default, so the
        // estimate must be recorded (its value is the planner's business).
        assert!(
            !matches!(trace.get("est_rows"), None | Some(Json::Null)),
            "est_rows missing with stats on: {trace:?}"
        );
        assert!(as_u64(trace.get("rows_in").expect("rows_in")) >= ROWS as u64);
    }
    // 10k rows over 4 threads goes parallel; the cold run (at least) must
    // have captured morsel-worker spans.
    assert!(
        as_u64(matching[1].get("worker_spans").expect("worker_spans")) >= 1,
        "no worker spans on a 4-thread query: {:?}",
        matching[1]
    );

    // The full trace for that query id carries the spans themselves.
    let query_id = as_u64(matching[1].get("query_id").expect("query_id"));
    let full = client.trace_get(query_id).expect("trace_get");
    let Some(Json::Arr(spans)) = full.get("spans") else {
        panic!("trace_get missing spans: {full:?}");
    };
    assert!(
        spans
            .iter()
            .any(|s| s.get("span").is_some_and(|n| str_of(n) == "worker")),
        "span tree has no worker span: {full:?}"
    );
    client.quit().expect("quit");
}

#[test]
fn failed_queries_are_recorded_with_error_status() {
    let server = start(false);
    let mut client = Client::connect(server.addr()).expect("connect");
    let sql = "select nope_9002 from big";
    let err = client.query(sql).expect_err("unknown column must fail");
    assert!(err.to_string().contains("nope_9002"), "got: {err}");
    let matching = traces_matching(&mut client, "9002");
    assert_eq!(matching.len(), 1, "failed query recorded: {matching:?}");
    let trace = &matching[0];
    assert_ne!(str_of(trace.get("status").expect("status")), "ok");
    assert!(
        trace.get("error").is_some(),
        "error message kept: {trace:?}"
    );
    assert_eq!(as_u64(trace.get("rows_out").expect("rows_out")), 0);
    client.quit().expect("quit");
}

/// A `Write` sink tests can read back (the slow-query log is global).
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_query_threshold_writes_json_lines() {
    let sink = SharedBuf::default();
    conquer_obs::set_slow_query_sink(Some(Box::new(sink.clone())));
    let server = start(false);
    let mut client = Client::connect(server.addr()).expect("connect");
    // Threshold 1µs: every query is "slow", so exactly this one logs.
    client.set("slow_query_us", Json::UInt(1)).expect("set");
    client
        .query("select count(*) from big where v < 9003")
        .expect("query");
    client.quit().expect("quit");
    conquer_obs::set_slow_query_sink(None);
    let logged = String::from_utf8(sink.0.lock().unwrap().clone()).expect("utf8 log");
    let line = logged
        .lines()
        .find(|l| l.contains("9003"))
        .unwrap_or_else(|| panic!("no slow-query line for the marker in: {logged:?}"));
    let parsed = Json::parse(line).expect("slow-query line is valid JSON");
    let slow = parsed.get("slow_query").expect("slow_query wrapper");
    assert_eq!(str_of(slow.get("status").expect("status")), "ok");
    assert_eq!(parsed.get("threshold_us").map(as_u64), Some(1));
}

/// Plain HTTP GET against the metrics endpoint, the way a scraper does it.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in: {response:?}"));
    (head.to_string(), body.to_string())
}

#[test]
fn metrics_endpoint_serves_prometheus_text_and_traces() {
    let server = start(true);
    let metrics_addr = server.metrics_addr().expect("metrics endpoint enabled");
    let mut client = Client::connect(server.addr()).expect("connect");
    client
        .query("select max(v) from big where v < 9004")
        .expect("query");

    let (head, body) = http_get(metrics_addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "prometheus content type: {head}"
    );
    assert!(
        body.contains("# TYPE serve_query_us histogram"),
        "serve.query.us histogram missing:\n{body}"
    );
    assert!(
        body.contains("serve_query_us_bucket{le=\"") && body.contains("le=\"+Inf\""),
        "cumulative buckets missing:\n{body}"
    );
    assert!(
        body.contains("serve_queries_total"),
        "query counter missing:\n{body}"
    );
    assert!(body.contains("serve_in_flight"), "gauges missing:\n{body}");

    let (head, body) = http_get(metrics_addr, "/metrics.json");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let parsed = Json::parse(&body).expect("metrics.json parses");
    assert!(parsed.get("gauges").is_some(), "gauges object: {body}");

    let (head, body) = http_get(metrics_addr, "/traces");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    let parsed = Json::parse(&body).expect("/traces parses");
    let Some(Json::Arr(traces)) = parsed.get("traces") else {
        panic!("/traces missing traces array: {body}");
    };
    assert!(
        traces
            .iter()
            .any(|t| t.get("sql").is_some_and(|s| str_of(s).contains("9004"))),
        "executed query not in /traces: {body}"
    );

    let (head, _) = http_get(metrics_addr, "/definitely-not-a-route");
    assert!(head.starts_with("HTTP/1.1 404"), "head: {head}");
    client.quit().expect("quit");
}
