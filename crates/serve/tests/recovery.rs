//! Server restart recovery over real loopback sockets: mutations driven
//! over the wire survive a stop/start cycle on the same `--data-dir`, both
//! through pure WAL replay and through a checkpoint, and the `stats` op
//! reports the storage section.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use conquer_core::ConstraintSet;
use conquer_engine::{Database, DurabilityOptions, SyncPolicy};
use conquer_obs::Json;
use conquer_serve::{serve, Client, ServerConfig, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "conquer-serve-recovery-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn open_db(dir: &Path) -> Arc<Database> {
    Arc::new(
        Database::open(
            dir,
            DurabilityOptions {
                sync: SyncPolicy::Always,
                checkpoint_wal_bytes: 0,
            },
        )
        .expect("open durable database"),
    )
}

fn start(db: Arc<Database>) -> ServerHandle {
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    serve(
        db,
        sigma,
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn lookup<'a>(json: &'a Json, key: &str) -> Option<&'a Json> {
    match json {
        Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn wire_mutations_survive_server_restart() {
    let dir = temp_dir("restart");

    // Boot 1: create and populate over the wire, then stop WITHOUT a
    // graceful checkpoint — recovery must come from the WAL alone.
    {
        let db = open_db(&dir);
        let server = start(Arc::clone(&db));
        let mut client = Client::connect(server.addr()).unwrap();
        client
            .script(
                "create table t (k text, v integer);
                 insert into t values ('a', 1), ('b', 2);",
            )
            .unwrap();
        client.script("insert into t values ('c', 3)").unwrap();
        let out = client.query("select count(*) from t").unwrap();
        assert_eq!(out.rows.rows[0][0].to_string(), "3");
        server.shutdown();
        server.wait();
    }

    // Boot 2: same data dir, fresh process-equivalent. The wire sees the
    // recovered rows; write more, then checkpoint via a graceful path.
    {
        let db = open_db(&dir);
        assert_eq!(db.table_names(), vec!["t".to_string()]);
        let server = start(Arc::clone(&db));
        let mut client = Client::connect(server.addr()).unwrap();
        let out = client.query("select k from t order by k").unwrap();
        let keys: Vec<String> = out.rows.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(keys, ["a", "b", "c"]);
        client.script("insert into t values ('d', 4)").unwrap();
        server.shutdown();
        server.wait();
        db.checkpoint().unwrap();
        db.flush().unwrap();
    }

    // Boot 3: recovery now comes from segments (plus an empty WAL).
    {
        let db = open_db(&dir);
        let status = db.storage_status().expect("durable");
        assert!(status.segments > 0, "boot 3 must load from segments");
        let server = start(Arc::clone(&db));
        let mut client = Client::connect(server.addr()).unwrap();
        let out = client.query("select count(*) from t").unwrap();
        assert_eq!(out.rows.rows[0][0].to_string(), "4");
        server.shutdown();
        server.wait();
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovered_indexes_build_lazily_on_first_query() {
    let dir = temp_dir("lazy-index");
    {
        let db = open_db(&dir);
        db.run_script(
            "create table t (k text, v integer);
             insert into t values ('a', 1), ('a', 2), ('b', 3)",
        )
        .unwrap();
        db.create_index("t", &["k"]).unwrap();
        // Build the postings now, so the cold boot below demonstrably
        // starts over from the declaration alone.
        db.query("select v from t where k = 'a'").unwrap();
        assert!(db.index_status()[0].2, "warm instance built its index");
        db.flush().unwrap();
    }

    // Cold boot: the declaration recovers, the postings do not — recovery
    // must stay cheap (`harness recover` measures this boot), so the
    // rebuild is deferred to the first query that plans against the table.
    let db = open_db(&dir);
    assert_eq!(
        db.index_status(),
        vec![("t".to_string(), vec!["k".to_string()], false)],
        "recovery must not eagerly rebuild index postings"
    );
    let server = start(Arc::clone(&db));
    let mut client = Client::connect(server.addr()).unwrap();
    let out = client.query("select v from t where k = 'a'").unwrap();
    assert_eq!(out.rows.rows.len(), 2);
    assert!(
        db.index_status()
            .iter()
            .any(|(t, _, built)| t == "t" && *built),
        "first query over the wire triggers the lazy rebuild"
    );
    server.shutdown();
    server.wait();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn stats_op_reports_storage_section() {
    let dir = temp_dir("stats");
    let db = open_db(&dir);
    let server = start(Arc::clone(&db));
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .script("create table t (k text, v integer); insert into t values ('a', 1)")
        .unwrap();
    let stats = client.stats().unwrap();
    let storage = lookup(&stats, "storage").expect("stats has a storage section");
    assert_eq!(lookup(storage, "durable"), Some(&Json::Bool(true)));
    // Numbers come back as Int after the wire roundtrip.
    match lookup(storage, "wal_bytes") {
        Some(Json::UInt(n)) => assert!(*n > 8, "mutations must grow the WAL"),
        Some(Json::Int(n)) => assert!(*n > 8, "mutations must grow the WAL"),
        other => panic!("wal_bytes missing or mistyped: {other:?}"),
    }
    server.shutdown();
    server.wait();
    drop(db);

    // A plain in-memory server reports durable: false.
    let server = start(Arc::new(Database::new()));
    let mut client = Client::connect(server.addr()).unwrap();
    let stats = client.stats().unwrap();
    let storage = lookup(&stats, "storage").expect("storage section present");
    assert_eq!(lookup(storage, "durable"), Some(&Json::Bool(false)));
    server.shutdown();
    server.wait();
    let _ = fs::remove_dir_all(&dir);
}
