//! Overload and disconnect behaviour: past the admission limit the server
//! answers `busy` (never hangs or panics), and dropping a connection
//! cancels its in-flight query through the governor within the cooperative
//! check interval.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use conquer_core::ConstraintSet;
use conquer_engine::Database;
use conquer_obs::Json;
use conquer_serve::protocol::{read_frame, write_frame};
use conquer_serve::{serve, Client, Request, ServerConfig, ServerHandle, Strategy};

/// A query that runs for a long time with tiny memory: a non-equality
/// correlated EXISTS forces a per-row nested-loop subquery (no
/// decorrelation), so the engine grinds through |big|³ comparisons while
/// only ever materializing one |big|² batch at a time. The predicate is
/// never true, so EXISTS cannot short-circuit.
const SLOW: &str = "select count(*) from big a \
                    where exists (select b.v from big b, big c where b.v + c.v + a.v < 0)";

fn start(rows: usize, max_concurrent: usize, queue_wait_ms: u64) -> ServerHandle {
    let db = Database::new();
    db.run_script("create table big (k text, v int)")
        .expect("create");
    let mut insert = String::from("insert into big values ");
    for i in 0..rows {
        let sep = if i + 1 < rows { "," } else { ";" };
        insert.push_str(&format!("('k{i}', {i}){sep}"));
    }
    db.run_script(&insert).expect("insert");
    let sigma = ConstraintSet::new().with_key("big", ["k"]);
    serve(
        Arc::new(db),
        sigma,
        ServerConfig {
            max_concurrent,
            queue_wait: Duration::from_millis(queue_wait_ms),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Poll the admission `in_flight` gauge through the stats op (which does
/// not go through admission itself) until `want` is reached.
fn wait_for_in_flight(client: &mut Client, want: u64, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        let stats = client.stats().expect("stats");
        let in_flight = stats
            .get("admission")
            .and_then(|a| a.get("in_flight"))
            .and_then(Json::as_f64)
            .expect("in_flight gauge") as u64;
        if in_flight == want {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn overload_maps_to_structured_busy() {
    let server = start(128, 1, 100);
    let addr = server.addr();

    std::thread::scope(|scope| {
        let slow = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect slow");
            let outcome = client
                .query_with(SLOW, Some(Strategy::Original))
                .expect("slow query");
            client.quit().expect("quit");
            outcome
        });

        let mut observer = Client::connect(addr).expect("connect observer");
        assert!(
            wait_for_in_flight(&mut observer, 1, Duration::from_secs(10)),
            "slow query never became in-flight"
        );

        // The single admission slot is held: a second query must come back
        // as a structured busy error after the queue wait, not hang.
        let asked = Instant::now();
        let err = observer
            .query_with("select v from big where v = 1", Some(Strategy::Original))
            .expect_err("should be rejected while the slot is held");
        assert!(err.is_busy(), "expected busy, got {err}");
        assert!(
            asked.elapsed() < Duration::from_secs(5),
            "busy rejection took {:?}, the queue wait is 100ms",
            asked.elapsed()
        );

        let stats = observer.stats().expect("stats");
        let rejected = stats
            .get("admission")
            .and_then(|a| a.get("rejected"))
            .and_then(Json::as_f64)
            .expect("rejected counter");
        assert!(rejected >= 1.0);

        // The slow query itself completes fine — overload never kills work
        // that was already admitted.
        let outcome = slow.join().expect("slow worker");
        assert_eq!(outcome.rows.rows.len(), 1);
        observer.quit().expect("quit");
    });
    server.shutdown();
}

/// Regression: a pipelined client finishes query N and starts query N+1
/// within one watchdog poll cycle, so the watchdog can see `Watching` →
/// `Watching` with no `Idle` in between. It must re-arm on the generation
/// change (fresh token *and* re-installed poll timeout — the session
/// restored blocking reads when query N finished); without that, a later
/// disconnect cancels query N's already-finished token and query N+1 runs
/// to completion holding the admission slot.
#[test]
fn disconnect_cancels_a_pipelined_back_to_back_query() {
    let server = start(128, 1, 100);
    let addr = server.addr();
    let registry = conquer_obs::registry();

    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let hello = read_frame(&mut raw).expect("hello frame").expect("hello");
    assert!(hello.get("session").is_some());

    // Pipeline a fast query and the slow one in one burst: the session
    // starts the slow query the instant the fast one's response is written.
    let fast = Request::Query {
        sql: "select v from big where v = 1".to_string(),
        strategy: Some(Strategy::Original),
    };
    let slow = Request::Query {
        sql: SLOW.to_string(),
        strategy: Some(Strategy::Original),
    };
    write_frame(&mut raw, &fast.to_json()).expect("send fast");
    write_frame(&mut raw, &slow.to_json()).expect("send slow");
    let first = read_frame(&mut raw).expect("fast response").expect("frame");
    assert!(
        first.get("result").is_some(),
        "expected rows, got {first:?}"
    );

    let mut observer = Client::connect(addr).expect("connect observer");
    assert!(
        wait_for_in_flight(&mut observer, 1, Duration::from_secs(10)),
        "slow query never became in-flight"
    );
    let trips_before = registry.counter("governor.trip.cancelled").get();

    drop(raw); // client gives up mid-slow-query

    assert!(
        wait_for_in_flight(&mut observer, 0, Duration::from_secs(5)),
        "back-to-back query was not cancelled after disconnect \
         (watchdog held the previous query's token?)"
    );
    assert!(
        registry.counter("governor.trip.cancelled").get() > trips_before,
        "the engine never unwound through the cancellation token"
    );
    observer.quit().expect("quit");
    server.shutdown();
}

#[test]
fn dropping_the_connection_cancels_the_query_via_the_governor() {
    let server = start(128, 1, 100);
    let addr = server.addr();
    let registry = conquer_obs::registry();

    // Raw protocol client: send the query frame, then vanish mid-flight.
    let mut raw = TcpStream::connect(addr).expect("connect raw");
    let hello = read_frame(&mut raw).expect("hello frame").expect("hello");
    assert!(
        hello.get("session").is_some(),
        "expected hello, got {hello:?}"
    );
    let query = Request::Query {
        sql: SLOW.to_string(),
        strategy: Some(Strategy::Original),
    };
    write_frame(&mut raw, &query.to_json()).expect("send query");

    let mut observer = Client::connect(addr).expect("connect observer");
    assert!(
        wait_for_in_flight(&mut observer, 1, Duration::from_secs(10)),
        "query never became in-flight"
    );
    let cancels_before = registry.counter("serve.disconnect_cancel").get();
    let trips_before = registry.counter("governor.trip.cancelled").get();

    drop(raw); // client gives up

    // The watchdog polls every 20ms and the governor checks every 256 rows,
    // so the slot must free well inside this deadline — far sooner than the
    // multi-second natural runtime of the query.
    let freed = Instant::now();
    assert!(
        wait_for_in_flight(&mut observer, 0, Duration::from_secs(5)),
        "in-flight query was not cancelled after disconnect"
    );
    let _ = freed.elapsed();

    assert!(
        registry.counter("serve.disconnect_cancel").get() > cancels_before,
        "the disconnect watchdog never fired"
    );
    assert!(
        registry.counter("governor.trip.cancelled").get() > trips_before,
        "the engine never unwound through the cancellation token"
    );

    // The server is fully healthy afterwards.
    let quick = observer
        .query_with("select v from big where v = 1", Some(Strategy::Original))
        .expect("server healthy after cancel");
    assert_eq!(quick.rows.rows.len(), 1);
    observer.quit().expect("quit");
    server.shutdown();
}
