//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is one frame: a 4-byte big-endian payload length followed
//! by that many bytes of UTF-8 JSON. The client speaks [`Request`]s, the
//! server answers each with exactly one [`Response`]; on connect the server
//! sends a single unsolicited [`Response::Hello`] (or a `busy` error when
//! at session capacity, after which it closes the connection). JSON keeps
//! the protocol inspectable with nothing but `nc` and keeps the workspace
//! zero-dependency — `conquer-obs` already ships the writer and parser.
//!
//! Result rows round-trip exactly: the full output schema (qualifier, name,
//! declared type) and every value are encoded such that decoding yields a
//! [`Rows`] bit-identical to in-process execution (dates and non-finite
//! floats use tagged objects since JSON has no spelling for them).

use std::io::{self, Read, Write};

use conquer_engine::{Column, DataType, EngineError, Rows, Schema, Value};
use conquer_obs::Json;

/// Upper bound on a single frame's payload (defence against hostile or
/// corrupt length prefixes; a 64 MiB result is far past anything the bench
/// workloads produce).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one frame: 4-byte big-endian length, then the rendered JSON.
pub fn write_frame(w: &mut impl Write, payload: &Json) -> io::Result<()> {
    let body = payload.render();
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                body.len()
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Encode one frame to bytes: 4-byte big-endian length, then the rendered
/// JSON. The event loop appends this to a connection's output buffer and
/// lets the nonblocking flusher drain it; errors only on an oversized
/// payload (the same cap [`write_frame`] enforces).
pub fn encode_frame(payload: &Json) -> io::Result<Vec<u8>> {
    let body = payload.render();
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                body.len()
            ),
        ));
    }
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    Ok(out)
}

/// Incremental frame decoder for nonblocking sockets.
///
/// [`read_frame`] assumes a blocking stream: it can sit in `read_exact`
/// until a whole frame arrives. A nonblocking driver instead gets bytes in
/// arbitrary chunks — half a length prefix now, three frames at once
/// later — so it feeds whatever arrived into [`extend`](FrameBuf::extend)
/// and drains complete frames with [`next_frame`](FrameBuf::next_frame).
/// Decoding is identical to `read_frame` (same length cap, same UTF-8 and
/// JSON validation); a decode error poisons the stream — the connection is
/// no longer at a known frame boundary and must close, exactly like the
/// blocking path.
#[derive(Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically so a long
    /// pipelined burst doesn't hold its full history in memory.
    pos: usize,
}

/// Compact the consumed prefix away once it crosses this many bytes (or
/// whenever the buffer is fully drained, which is the common case).
const FRAMEBUF_COMPACT_BYTES: usize = 64 * 1024;

impl FrameBuf {
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append newly-read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, if the buffer holds one.
    /// `Ok(None)` means more bytes are needed; errors are terminal for the
    /// connection (oversized length, non-UTF-8, or malformed JSON).
    pub fn next_frame(&mut self) -> io::Result<Option<Json>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
            ));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let text = std::str::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
        let json = Json::parse(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))?;
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= FRAMEBUF_COMPACT_BYTES {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(json))
    }
}

/// Read one frame. Returns `Ok(None)` on a clean EOF at a frame boundary;
/// a mid-frame EOF, an oversized length prefix, or undecodable JSON is an
/// error (the connection is no longer at a known boundary and must close).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    Json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

/// How a session executes SQL: the three strategies of the paper's
/// evaluation. `Original` is possible-answer semantics; `Rewritten` and
/// `Annotated` compute consistent answers via the ConQuer rewriting
/// (Section 5's annotation-aware variant for the latter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    #[default]
    Original,
    Rewritten,
    Annotated,
}

impl Strategy {
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Original => "original",
            Strategy::Rewritten => "rewritten",
            Strategy::Annotated => "annotated",
        }
    }

    pub fn parse(s: &str) -> Option<Strategy> {
        match s {
            "original" => Some(Strategy::Original),
            "rewritten" => Some(Strategy::Rewritten),
            "annotated" => Some(Strategy::Annotated),
            _ => None,
        }
    }
}

/// A client request. One frame each; the server answers every request with
/// exactly one [`Response`] frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Parse/rewrite/plan (through the statement cache) and execute.
    Query {
        sql: String,
        /// `None` uses the session strategy (`SET strategy ...`).
        strategy: Option<Strategy>,
    },
    /// Cache the statement and bind a session-local id for `Execute`.
    Prepare {
        sql: String,
        strategy: Option<Strategy>,
    },
    /// Execute a prepared statement by id.
    Execute { statement: u64 },
    /// Drop a prepared statement binding.
    CloseStatement { statement: u64 },
    /// Set a session option: `threads`, `timeout_ms`, `mem_limit`,
    /// `max_rows` (0 clears a limit), or `strategy`.
    Set { name: String, value: Json },
    /// Run a `;`-separated DDL/DML script (`CREATE TABLE` / `INSERT`);
    /// bumps the catalog epoch, invalidating cached plans.
    Script { sql: String },
    /// Server + session statistics snapshot.
    Stats,
    /// Recent flight-recorder traces (newest first), optionally capped.
    TraceRecent { limit: Option<u64> },
    /// One query's full trace (all spans) by its `query_id`.
    TraceGet { query_id: u64 },
    /// Liveness probe.
    Ping,
    /// Close this session (the server responds, then closes).
    Quit,
    /// Stop accepting connections and shut the server down once sessions
    /// drain.
    Shutdown,
}

impl Request {
    pub fn to_json(&self) -> Json {
        match self {
            Request::Query { sql, strategy } => {
                let mut o = Json::obj([
                    ("op", Json::from("query")),
                    ("sql", Json::from(sql.as_str())),
                ]);
                if let Some(s) = strategy {
                    o.push("strategy", Json::from(s.label()));
                }
                o
            }
            Request::Prepare { sql, strategy } => {
                let mut o = Json::obj([
                    ("op", Json::from("prepare")),
                    ("sql", Json::from(sql.as_str())),
                ]);
                if let Some(s) = strategy {
                    o.push("strategy", Json::from(s.label()));
                }
                o
            }
            Request::Execute { statement } => Json::obj([
                ("op", Json::from("execute")),
                ("statement", Json::UInt(*statement)),
            ]),
            Request::CloseStatement { statement } => Json::obj([
                ("op", Json::from("close_statement")),
                ("statement", Json::UInt(*statement)),
            ]),
            Request::Set { name, value } => Json::obj([
                ("op", Json::from("set")),
                ("name", Json::from(name.as_str())),
                ("value", value.clone()),
            ]),
            Request::Script { sql } => Json::obj([
                ("op", Json::from("script")),
                ("sql", Json::from(sql.as_str())),
            ]),
            Request::Stats => Json::obj([("op", Json::from("stats"))]),
            Request::TraceRecent { limit } => {
                let mut o = Json::obj([("op", Json::from("trace_recent"))]);
                if let Some(n) = limit {
                    o.push("limit", Json::UInt(*n));
                }
                o
            }
            Request::TraceGet { query_id } => Json::obj([
                ("op", Json::from("trace_get")),
                ("query_id", Json::UInt(*query_id)),
            ]),
            Request::Ping => Json::obj([("op", Json::from("ping"))]),
            Request::Quit => Json::obj([("op", Json::from("quit"))]),
            Request::Shutdown => Json::obj([("op", Json::from("shutdown"))]),
        }
    }

    pub fn from_json(json: &Json) -> Result<Request, String> {
        let op = str_field(json, "op")?;
        let strategy = |j: &Json| -> Result<Option<Strategy>, String> {
            match j.get("strategy") {
                None => Ok(None),
                Some(Json::Str(s)) => Strategy::parse(s)
                    .map(Some)
                    .ok_or_else(|| format!("unknown strategy `{s}`")),
                Some(other) => Err(format!("strategy must be a string, got {other}")),
            }
        };
        match op.as_str() {
            "query" => Ok(Request::Query {
                sql: str_field(json, "sql")?,
                strategy: strategy(json)?,
            }),
            "prepare" => Ok(Request::Prepare {
                sql: str_field(json, "sql")?,
                strategy: strategy(json)?,
            }),
            "execute" => Ok(Request::Execute {
                statement: uint_field(json, "statement")?,
            }),
            "close_statement" => Ok(Request::CloseStatement {
                statement: uint_field(json, "statement")?,
            }),
            "set" => Ok(Request::Set {
                name: str_field(json, "name")?,
                value: json
                    .get("value")
                    .cloned()
                    .ok_or_else(|| "missing field `value`".to_string())?,
            }),
            "script" => Ok(Request::Script {
                sql: str_field(json, "sql")?,
            }),
            "stats" => Ok(Request::Stats),
            "trace_recent" => Ok(Request::TraceRecent {
                limit: match json.get("limit") {
                    None => None,
                    Some(_) => Some(uint_field(json, "limit")?),
                },
            }),
            "trace_get" => Ok(Request::TraceGet {
                query_id: uint_field(json, "query_id")?,
            }),
            "ping" => Ok(Request::Ping),
            "quit" => Ok(Request::Quit),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// Machine-readable failure category carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission queue or session cap over capacity: retry later.
    Busy,
    /// Malformed frame, unknown op, bad field types.
    Protocol,
    /// SQL failed to parse.
    Parse,
    /// The ConQuer rewriting rejected the query (not a tree query, missing
    /// key constraint, unannotated database under `annotated`).
    Rewrite,
    /// Unknown prepared-statement id.
    UnknownStatement,
    Timeout,
    MemExceeded,
    RowLimit,
    Cancelled,
    /// Any other engine planning/execution failure.
    Engine,
}

impl ErrorCode {
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::Rewrite => "rewrite",
            ErrorCode::UnknownStatement => "unknown_statement",
            ErrorCode::Timeout => "timeout",
            ErrorCode::MemExceeded => "mem_exceeded",
            ErrorCode::RowLimit => "row_limit",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Engine => "engine",
        }
    }

    pub fn parse(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "busy" => ErrorCode::Busy,
            "protocol" => ErrorCode::Protocol,
            "parse" => ErrorCode::Parse,
            "rewrite" => ErrorCode::Rewrite,
            "unknown_statement" => ErrorCode::UnknownStatement,
            "timeout" => ErrorCode::Timeout,
            "mem_exceeded" => ErrorCode::MemExceeded,
            "row_limit" => ErrorCode::RowLimit,
            "cancelled" => ErrorCode::Cancelled,
            "engine" => ErrorCode::Engine,
            _ => return None,
        })
    }

    /// The structured category for an engine error.
    pub fn from_engine(e: &EngineError) -> ErrorCode {
        match e {
            EngineError::Timeout(_) => ErrorCode::Timeout,
            EngineError::MemoryExceeded(_) => ErrorCode::MemExceeded,
            EngineError::RowLimitExceeded(_) => ErrorCode::RowLimit,
            EngineError::Cancelled(_) => ErrorCode::Cancelled,
            _ => ErrorCode::Engine,
        }
    }
}

/// One result batch plus its serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub rows: Rows,
    /// Whether the statement came out of the rewrite/plan cache.
    pub cached: bool,
    /// Server-side wall time for the request, microseconds.
    pub elapsed_us: u64,
}

/// A server reply. Exactly one per request, plus the connect-time `Hello`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Connect-time greeting.
    Hello { session: u64, version: String },
    /// Success without a payload (`set`, `script`, `ping`, `quit`, ...).
    Ok,
    /// Successful `prepare`: the session-local statement id.
    Prepared { statement: u64 },
    /// Successful `query`/`execute`.
    Rows(QueryOutcome),
    /// Successful `stats`.
    Stats(Json),
    /// Successful `trace_recent` (a `{recorded, capacity, traces: [...]}`
    /// dump) or `trace_get` (one full trace with its spans).
    Traces(Json),
    /// Any failure, including `busy` admission rejections.
    Error { code: ErrorCode, message: String },
}

impl Response {
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }

    pub fn to_json(&self) -> Json {
        match self {
            Response::Hello { session, version } => Json::obj([
                ("ok", Json::Bool(true)),
                ("hello", Json::from("conquer-serve")),
                ("version", Json::from(version.as_str())),
                ("session", Json::UInt(*session)),
            ]),
            Response::Ok => Json::obj([("ok", Json::Bool(true))]),
            Response::Prepared { statement } => Json::obj([
                ("ok", Json::Bool(true)),
                ("statement", Json::UInt(*statement)),
            ]),
            Response::Rows(outcome) => Json::obj([
                ("ok", Json::Bool(true)),
                ("result", rows_to_json(&outcome.rows)),
                ("cached", Json::Bool(outcome.cached)),
                ("elapsed_us", Json::UInt(outcome.elapsed_us)),
            ]),
            Response::Stats(stats) => {
                Json::obj([("ok", Json::Bool(true)), ("stats", stats.clone())])
            }
            Response::Traces(traces) => {
                Json::obj([("ok", Json::Bool(true)), ("traces", traces.clone())])
            }
            Response::Error { code, message } => Json::obj([
                ("ok", Json::Bool(false)),
                (
                    "error",
                    Json::obj([
                        ("code", Json::from(code.label())),
                        ("message", Json::from(message.as_str())),
                    ]),
                ),
            ]),
        }
    }

    pub fn from_json(json: &Json) -> Result<Response, String> {
        match json.get("ok") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                let err = json
                    .get("error")
                    .ok_or_else(|| "error response without `error` field".to_string())?;
                let code_s = str_field(err, "code")?;
                let code = ErrorCode::parse(&code_s)
                    .ok_or_else(|| format!("unknown error code `{code_s}`"))?;
                return Ok(Response::Error {
                    code,
                    message: str_field(err, "message")?,
                });
            }
            _ => return Err("response without boolean `ok` field".to_string()),
        }
        if json.get("hello").is_some() {
            return Ok(Response::Hello {
                session: uint_field(json, "session")?,
                version: str_field(json, "version")?,
            });
        }
        if let Some(result) = json.get("result") {
            let cached = matches!(json.get("cached"), Some(Json::Bool(true)));
            let elapsed_us = uint_field(json, "elapsed_us").unwrap_or(0);
            return Ok(Response::Rows(QueryOutcome {
                rows: rows_from_json(result)?,
                cached,
                elapsed_us,
            }));
        }
        if let Some(stats) = json.get("stats") {
            return Ok(Response::Stats(stats.clone()));
        }
        if let Some(traces) = json.get("traces") {
            return Ok(Response::Traces(traces.clone()));
        }
        if let Some(Json::UInt(id)) = json.get("statement") {
            return Ok(Response::Prepared { statement: *id });
        }
        if let Some(Json::Int(id)) = json.get("statement") {
            return Ok(Response::Prepared {
                statement: u64::try_from(*id).map_err(|_| "negative statement id".to_string())?,
            });
        }
        Ok(Response::Ok)
    }
}

fn str_field(json: &Json, key: &str) -> Result<String, String> {
    match json.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(other) => Err(format!("field `{key}` must be a string, got {other}")),
        None => Err(format!("missing field `{key}`")),
    }
}

fn uint_field(json: &Json, key: &str) -> Result<u64, String> {
    match json.get(key) {
        Some(Json::UInt(v)) => Ok(*v),
        Some(Json::Int(v)) if *v >= 0 => Ok(*v as u64),
        Some(other) => Err(format!(
            "field `{key}` must be a non-negative integer, got {other}"
        )),
        None => Err(format!("missing field `{key}`")),
    }
}

fn datatype_label(ty: DataType) -> &'static str {
    match ty {
        DataType::Integer => "integer",
        DataType::Float => "float",
        DataType::Text => "text",
        DataType::Date => "date",
        DataType::Boolean => "boolean",
        DataType::Any => "any",
    }
}

fn datatype_parse(s: &str) -> Option<DataType> {
    Some(match s {
        "integer" => DataType::Integer,
        "float" => DataType::Float,
        "text" => DataType::Text,
        "date" => DataType::Date,
        "boolean" => DataType::Boolean,
        "any" => DataType::Any,
        _ => return None,
    })
}

/// Encode one SQL value. Dates and non-finite floats use tagged
/// single-field objects (`{"$date": days}`, `{"$float": "nan"}`) because
/// JSON has no native spelling for them; finite floats rely on Rust's
/// shortest-roundtrip formatting, so decoding restores identical bits.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(v) => Json::Int(*v),
        Value::Float(f) if f.is_finite() => Json::Float(*f),
        Value::Float(f) => {
            let tag = if f.is_nan() {
                "nan"
            } else if *f > 0.0 {
                "inf"
            } else {
                "-inf"
            };
            Json::obj([("$float", Json::from(tag))])
        }
        Value::Str(s) => Json::Str(s.to_string()),
        Value::Date(d) => Json::obj([("$date", Json::Int(*d as i64))]),
    }
}

/// Decode one SQL value (inverse of [`value_to_json`]).
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    Ok(match json {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Int(v) => Value::Int(*v),
        Json::UInt(v) => {
            Value::Int(i64::try_from(*v).map_err(|_| format!("integer {v} overflows i64"))?)
        }
        Json::Float(f) => Value::Float(*f),
        Json::Str(s) => Value::str(s),
        Json::Obj(_) => {
            if let Some(d) = json.get("$date") {
                match d {
                    Json::Int(days) => Value::Date(
                        i32::try_from(*days).map_err(|_| "date out of range".to_string())?,
                    ),
                    other => return Err(format!("$date must be an integer, got {other}")),
                }
            } else if let Some(Json::Str(tag)) = json.get("$float") {
                Value::Float(match tag.as_str() {
                    "nan" => f64::NAN,
                    "inf" => f64::INFINITY,
                    "-inf" => f64::NEG_INFINITY,
                    other => return Err(format!("unknown $float tag `{other}`")),
                })
            } else {
                return Err(format!("unknown tagged value {json}"));
            }
        }
        Json::Arr(_) => return Err("array is not a SQL value".to_string()),
    })
}

/// Encode a result batch with its full schema.
pub fn rows_to_json(rows: &Rows) -> Json {
    let columns = rows
        .schema
        .columns
        .iter()
        .map(|c| {
            let mut col = Json::obj([
                ("name", Json::from(c.name.as_str())),
                ("type", Json::from(datatype_label(c.ty))),
            ]);
            if let Some(q) = &c.qualifier {
                col.push("qualifier", Json::from(q.as_str()));
            }
            col
        })
        .collect::<Vec<_>>();
    let data = rows
        .rows
        .iter()
        .map(|row| Json::Arr(row.iter().map(value_to_json).collect()))
        .collect::<Vec<_>>();
    Json::obj([
        ("columns", Json::Arr(columns)),
        ("rows", Json::Arr(data)),
        ("row_count", Json::UInt(rows.rows.len() as u64)),
    ])
}

/// Decode a result batch (inverse of [`rows_to_json`]).
pub fn rows_from_json(json: &Json) -> Result<Rows, String> {
    let Some(Json::Arr(columns)) = json.get("columns") else {
        return Err("result without `columns` array".to_string());
    };
    let schema = Schema::new(
        columns
            .iter()
            .map(|c| {
                let name = str_field(c, "name")?;
                let ty_s = str_field(c, "type")?;
                let ty =
                    datatype_parse(&ty_s).ok_or_else(|| format!("unknown column type `{ty_s}`"))?;
                let qualifier = match c.get("qualifier") {
                    Some(Json::Str(q)) => Some(q.as_str()),
                    _ => None,
                };
                Ok(Column::new(qualifier, &name, ty))
            })
            .collect::<Result<Vec<_>, String>>()?,
    );
    let Some(Json::Arr(data)) = json.get("rows") else {
        return Err("result without `rows` array".to_string());
    };
    let rows = data
        .iter()
        .map(|row| match row {
            Json::Arr(cells) => cells.iter().map(value_from_json).collect(),
            other => Err(format!("row must be an array, got {other}")),
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Rows { schema, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let doc = Json::obj([("op", Json::from("ping"))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(doc));
        assert_eq!(read_frame(&mut cursor).unwrap(), None); // clean EOF
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Json::obj([("op", Json::from("ping"))])).unwrap();
        buf.truncate(buf.len() - 2);
        let mut cursor = io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn encode_frame_matches_write_frame() {
        let doc = Json::obj([("op", Json::from("ping")), ("n", Json::UInt(7))]);
        let mut written = Vec::new();
        write_frame(&mut written, &doc).unwrap();
        assert_eq!(encode_frame(&doc).unwrap(), written);
    }

    #[test]
    fn framebuf_decodes_byte_at_a_time() {
        let docs = [
            Json::obj([("op", Json::from("ping"))]),
            Json::obj([("op", Json::from("query")), ("sql", Json::from("select 1"))]),
            Json::obj([("op", Json::from("quit"))]),
        ];
        let mut wire = Vec::new();
        for doc in &docs {
            write_frame(&mut wire, doc).unwrap();
        }
        let mut frames = FrameBuf::new();
        let mut decoded = Vec::new();
        for byte in wire {
            frames.extend(&[byte]);
            while let Some(json) = frames.next_frame().unwrap() {
                decoded.push(json);
            }
        }
        assert_eq!(decoded, docs);
        assert_eq!(frames.buffered(), 0);
    }

    #[test]
    fn framebuf_decodes_a_pipelined_burst() {
        let docs: Vec<Json> = (0..5).map(|i| Json::obj([("i", Json::Int(i))])).collect();
        let mut wire = Vec::new();
        for doc in &docs {
            write_frame(&mut wire, doc).unwrap();
        }
        // Everything arrives in one read, plus half of a trailing frame.
        let extra = Json::obj([("i", Json::Int(99))]);
        let mut tail = Vec::new();
        write_frame(&mut tail, &extra).unwrap();
        let split = tail.len() / 2;
        let mut frames = FrameBuf::new();
        frames.extend(&wire);
        frames.extend(&tail[..split]);
        let mut decoded = Vec::new();
        while let Some(json) = frames.next_frame().unwrap() {
            decoded.push(json);
        }
        assert_eq!(decoded, docs);
        assert!(frames.buffered() > 0, "partial trailing frame stays buffered");
        frames.extend(&tail[split..]);
        assert_eq!(frames.next_frame().unwrap(), Some(extra));
        assert_eq!(frames.buffered(), 0);
    }

    #[test]
    fn framebuf_rejects_oversized_and_malformed_frames() {
        let mut oversized = FrameBuf::new();
        oversized.extend(&(u32::MAX).to_be_bytes());
        assert!(oversized.next_frame().is_err());

        let mut garbage = FrameBuf::new();
        garbage.extend(&5u32.to_be_bytes());
        garbage.extend(b"nope!");
        assert!(garbage.next_frame().is_err());
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xxxx");
        assert!(read_frame(&mut io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Query {
                sql: "select 1".into(),
                strategy: Some(Strategy::Rewritten),
            },
            Request::Query {
                sql: "select 1".into(),
                strategy: None,
            },
            Request::Prepare {
                sql: "select custkey from customer".into(),
                strategy: Some(Strategy::Annotated),
            },
            Request::Execute { statement: 3 },
            Request::CloseStatement { statement: 3 },
            Request::Set {
                name: "threads".into(),
                value: Json::Int(4),
            },
            Request::Script {
                sql: "create table t (a integer)".into(),
            },
            Request::Stats,
            Request::TraceRecent { limit: Some(10) },
            Request::TraceRecent { limit: None },
            Request::TraceGet { query_id: 42 },
            Request::Ping,
            Request::Quit,
            Request::Shutdown,
        ];
        for req in cases {
            let back = Request::from_json(&req.to_json()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let rows = Rows {
            schema: Schema::new(vec![
                Column::new(Some("c"), "custkey", DataType::Integer),
                Column::bare("bal", DataType::Float),
                Column::bare("day", DataType::Date),
            ]),
            rows: vec![
                vec![Value::Int(1), Value::Float(0.1), Value::Date(19000)],
                vec![Value::Null, Value::Float(f64::NAN), Value::str("x")],
            ],
        };
        let cases = [
            Response::Hello {
                session: 7,
                version: "0.1.0".into(),
            },
            Response::Ok,
            Response::Prepared { statement: 9 },
            Response::Rows(QueryOutcome {
                rows,
                cached: true,
                elapsed_us: 1234,
            }),
            Response::Stats(Json::obj([("active_sessions", Json::UInt(2))])),
            Response::Traces(Json::obj([
                ("recorded", Json::UInt(5)),
                ("traces", Json::Arr(vec![])),
            ])),
            Response::error(ErrorCode::Busy, "queue full"),
        ];
        for resp in cases {
            let back = Response::from_json(&resp.to_json()).unwrap();
            match (&back, &resp) {
                // NaN != NaN under PartialEq; compare via re-encoding.
                (Response::Rows(a), Response::Rows(b)) => {
                    assert_eq!(a.rows.schema, b.rows.schema);
                    assert_eq!(
                        rows_to_json(&a.rows).render(),
                        rows_to_json(&b.rows).render()
                    );
                }
                _ => assert_eq!(back, resp),
            }
        }
    }

    #[test]
    fn unknown_ops_and_bad_fields_rejected() {
        assert!(Request::from_json(&Json::obj([("op", Json::from("nope"))])).is_err());
        assert!(Request::from_json(&Json::obj([("sql", Json::from("select 1"))])).is_err());
        assert!(Request::from_json(&Json::obj([
            ("op", Json::from("query")),
            ("sql", Json::from("select 1")),
            ("strategy", Json::from("bogus")),
        ]))
        .is_err());
        assert!(Request::from_json(&Json::obj([
            ("op", Json::from("execute")),
            ("statement", Json::Int(-1)),
        ]))
        .is_err());
    }

    #[test]
    fn value_encoding_is_exact() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(1.0 / 3.0),
            Value::str("héllo\n"),
            Value::Date(-1),
        ];
        for v in vals {
            let encoded = value_to_json(&v).render();
            let decoded = value_from_json(&Json::parse(&encoded).unwrap()).unwrap();
            assert_eq!(format!("{v:?}"), format!("{decoded:?}"));
        }
    }
}
