//! The multiplexed serving core: a readiness-polled event loop over
//! nonblocking sockets, std-only.
//!
//! Thread-per-connection (PR 4) spends one OS thread — stack, scheduler
//! slot, watchdog sibling — per client, which caps realistic connection
//! counts orders of magnitude below the ROADMAP's target. This module
//! replaces it with a fixed topology, independent of connection count:
//!
//! * **IO drivers** (`io_threads`, named `conquer-io-N`): each owns a
//!   disjoint set of connections and sweeps them level-triggered — flush
//!   pending output, drain readable bytes into an incremental
//!   [`FrameBuf`], dispatch complete requests. `std` exposes no
//!   `epoll`/`poll`, so readiness is discovered by the sweep itself
//!   (nonblocking reads that return `WouldBlock` when idle) with a short
//!   condvar nap between sweeps; accepts and query completions cut the
//!   nap short via [`Waker`].
//! * **Query workers** (`workers`, named `conquer-worker-N`): pull
//!   admission-gated jobs from the shared [`RunQueue`] and run them via
//!   [`crate::state::run_heavy`] — the same code the fallback mode runs
//!   on session threads, so responses are wire-identical across modes.
//!
//! Session state is an explicit per-connection struct ([`SessionState`]
//! inside [`ConnState`]), not thread-stack state. The protocol is strictly
//! request/response, so each connection has at most one request in flight;
//! parsed-but-undispatched requests wait in a per-connection FIFO, which
//! keeps responses in order without any reordering machinery.
//!
//! **Disconnect detection** is structural here rather than bolted on: the
//! driver actually *drains* the socket, so a FIN is seen as `read() == 0`
//! even when pipelined frames precede it — the exact case the fallback
//! watchdog's `peek` could never see (its `Ok(n)` arm can't distinguish
//! "bytes then more bytes" from "bytes then FIN"). EOF or a hard socket
//! error cancels the in-flight query's [`CancellationToken`], bumps
//! `serve.disconnect_cancel`, discards undispatched pipelined requests,
//! and tears the connection down.
//!
//! **Overload** keeps the PR-4 queue-wait → `busy` contract from both
//! directions: a worker that picks a job up passes the job's *enqueue*
//! time to [`Admission::try_admit_from`], so run-queue wait counts against
//! the same deadline as semaphore wait; and when every worker is wedged
//! behind slow queries, the drivers' sweep expires over-deadline jobs
//! straight out of the run queue so the client still gets its `busy`
//! within the deadline instead of whenever a worker frees up.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use conquer_engine::CancellationToken;

use crate::error::ServeError;
use crate::protocol::{encode_frame, ErrorCode, FrameBuf, Request, Response};
use crate::server::Shared;
use crate::state::{
    classify, error_response, handle_control, run_heavy, HeavyOp, RequestClass, SessionState,
    SERVER_VERSION,
};

/// Upper bound on a driver's nap between sweeps. Readiness is discovered
/// by the sweep (no `epoll` in std), so this bounds added request latency;
/// wakeups from accepts and query completions usually cut it short.
const POLL_INTERVAL: Duration = Duration::from_millis(1);

/// Per-connection cap on parsed-but-undispatched requests. Past this the
/// driver stops reading the socket (TCP backpressure does the rest), which
/// bounds the memory a hostile pipeliner can pin server-side.
const PENDING_CAP: usize = 64;

/// Read granularity of the driver sweep.
const READ_CHUNK: usize = 16 * 1024;

/// How long a closing connection (after `quit`/`shutdown`/a protocol
/// error) gets to drain its final response to a slow-reading peer before
/// the driver closes the socket regardless.
const FLUSH_GRACE: Duration = Duration::from_secs(2);

/// Wakeup latch for one driver: `wake` is sticky, so a notification that
/// arrives while the driver is mid-sweep is consumed by the next `wait`
/// instead of being lost.
pub(crate) struct Waker {
    flag: Mutex<bool>,
    cond: Condvar,
}

impl Waker {
    pub(crate) fn new() -> Waker {
        Waker {
            flag: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    pub(crate) fn wake(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        drop(flag);
        self.cond.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        if !*flag {
            let (guard, _) = self
                .cond
                .wait_timeout(flag, timeout)
                .unwrap_or_else(|e| e.into_inner());
            flag = guard;
        }
        *flag = false;
    }
}

/// Hand-off slot from the accept loop to one driver.
pub(crate) struct Inbox {
    state: Mutex<InboxState>,
}

struct InboxState {
    arrivals: Vec<(TcpStream, u64)>,
    closed: bool,
}

impl Inbox {
    pub(crate) fn new() -> Inbox {
        Inbox {
            state: Mutex::new(InboxState {
                arrivals: Vec::new(),
                closed: false,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, InboxState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queue an accepted connection for the driver. `Err` returns the
    /// stream when the driver has already shut down — the accept loop then
    /// unwinds the session bookkeeping itself.
    pub(crate) fn push(&self, stream: TcpStream, id: u64) -> Result<(), TcpStream> {
        let mut state = self.lock();
        if state.closed {
            return Err(stream);
        }
        state.arrivals.push((stream, id));
        Ok(())
    }

    fn drain(&self) -> Vec<(TcpStream, u64)> {
        std::mem::take(&mut self.lock().arrivals)
    }

    fn close_and_drain(&self) -> Vec<(TcpStream, u64)> {
        let mut state = self.lock();
        state.closed = true;
        std::mem::take(&mut state.arrivals)
    }
}

/// Everything one connection remembers, owned by its driver and touched by
/// at most one other thread (the worker running its single in-flight job,
/// or a driver expiring that job) under this mutex.
struct ConnState {
    /// Absent exactly while a heavy op is in flight — the job owns the
    /// session state for the duration, which is safe because the pending
    /// FIFO dispatches at most one request at a time.
    session: Option<SessionState>,
    frames: FrameBuf,
    /// Parsed requests (or their parse errors, which must be answered in
    /// arrival order) waiting for dispatch.
    pending: VecDeque<Result<Request, String>>,
    /// Bytes owed to the client; `out_pos` marks the flushed prefix.
    out: Vec<u8>,
    out_pos: usize,
    /// The in-flight query's cancellation token; EOF/error on the socket
    /// fires it, which is the whole disconnect-detection story.
    in_flight: Option<CancellationToken>,
    /// Poisoned: discard any late worker completion, tear down on sight.
    dead: bool,
    /// Stop reading, flush `out`, then close (quit/shutdown/protocol
    /// error). `flush_deadline` bounds how long a non-reading peer can
    /// hold the socket open in this state.
    close_after_flush: bool,
    shutdown_after_flush: bool,
    flush_deadline: Option<Instant>,
    /// Teardown ran (session count decremented, socket closed) — guards
    /// against double-teardown from racing paths.
    torn_down: bool,
}

pub(crate) struct Conn {
    stream: TcpStream,
    /// The owning driver's waker, so workers can nudge it on completion.
    driver: Arc<Waker>,
    state: Mutex<ConnState>,
}

impl Conn {
    fn lock(&self) -> MutexGuard<'_, ConnState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One admission-gated request traveling to a query worker. Owns the
/// connection's session state for the duration (see [`ConnState::session`]).
struct Job {
    conn: Arc<Conn>,
    op: HeavyOp,
    session: SessionState,
    token: CancellationToken,
    queued_at: Instant,
    /// `queued_at + queue_wait`: past this, drivers expire the job to a
    /// `busy` response without waiting for a worker.
    deadline: Instant,
}

/// The bounded run queue feeding the query workers. Structurally bounded:
/// each connection contributes at most one job (single in-flight per
/// connection), so depth ≤ live connections ≤ `max_sessions`.
pub(crate) struct RunQueue {
    state: Mutex<RunQueueState>,
    cond: Condvar,
}

struct RunQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl RunQueue {
    pub(crate) fn new() -> Arc<RunQueue> {
        Arc::new(RunQueue {
            state: Mutex::new(RunQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, RunQueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, job: Job) -> Result<(), Job> {
        let mut state = self.lock();
        if state.closed {
            return Err(job);
        }
        state.jobs.push_back(job);
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Block for the next job; `None` once closed and drained (worker
    /// exit). Jobs left at close are still handed out — their connections
    /// are dead by then and the worker discards them cheaply.
    fn pop(&self) -> Option<Job> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Remove every queued job whose queue-wait deadline has passed. All
    /// jobs share one `queue_wait` offset so deadlines are push-ordered;
    /// the expired set is always a prefix.
    fn expire(&self, now: Instant) -> Vec<Job> {
        let mut state = self.lock();
        let mut expired = Vec::new();
        while state.jobs.front().is_some_and(|job| now >= job.deadline) {
            expired.push(state.jobs.pop_front().expect("front checked"));
        }
        expired
    }

    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.cond.notify_all();
    }

    pub(crate) fn depth(&self) -> usize {
        self.lock().jobs.len()
    }
}

/// Per-driver handles the accept loop and `request_shutdown` need.
pub(crate) struct DriverShared {
    pub(crate) waker: Arc<Waker>,
    pub(crate) inbox: Arc<Inbox>,
}

/// The event-mode plumbing hung off [`Shared`] once at startup.
pub(crate) struct EventCore {
    pub(crate) run_queue: Arc<RunQueue>,
    pub(crate) drivers: Vec<DriverShared>,
}

/// What a sweep decided about one connection.
enum Outcome {
    Alive,
    /// Close without disconnect semantics (quit, shutdown, flush-deadline,
    /// internal error).
    Close,
    /// Close because the peer vanished (EOF / socket error) — in-flight
    /// cancellation was already fired under the lock.
    Disconnect,
    /// Close, then initiate server shutdown (client `shutdown` acked and
    /// flushed — the response is in the kernel buffer before any socket
    /// gets torn down, which the CLI's clean-exit path depends on).
    CloseAndShutdown,
}

/// Body of one `conquer-io-N` thread.
pub(crate) fn driver_loop(
    shared: Arc<Shared>,
    queue: Arc<RunQueue>,
    inbox: Arc<Inbox>,
    waker: Arc<Waker>,
) {
    let mut conns: Vec<Arc<Conn>> = Vec::new();
    loop {
        for (stream, id) in inbox.drain() {
            match adopt(&shared, stream, id, &waker) {
                Some(conn) => conns.push(conn),
                None => shared.session_closed(),
            }
        }
        if shared.is_shutting_down() {
            // Bounce anything racing in, then tear down owned connections:
            // cancel in-flight work, close sockets, drain the counts.
            for (stream, _id) in inbox.close_and_drain() {
                drop(stream);
                shared.session_closed();
            }
            for conn in conns.drain(..) {
                teardown(&shared, &conn, false);
            }
            return;
        }
        conns.retain(|conn| match sweep(&shared, &queue, conn) {
            Outcome::Alive => true,
            Outcome::Close => {
                teardown(&shared, conn, false);
                false
            }
            Outcome::Disconnect => {
                teardown(&shared, conn, true);
                false
            }
            Outcome::CloseAndShutdown => {
                teardown(&shared, conn, false);
                shared.request_shutdown();
                false
            }
        });
        for job in queue.expire(Instant::now()) {
            expire_job(&shared, job);
        }
        waker.wait(POLL_INTERVAL);
    }
}

/// Body of one `conquer-worker-N` thread.
pub(crate) fn worker_loop(shared: Arc<Shared>, queue: Arc<RunQueue>) {
    while let Some(mut job) = queue.pop() {
        if job.conn.lock().dead {
            continue;
        }
        let response = run_heavy(&shared, &mut job.session, &job.op, &job.token, job.queued_at);
        let mut state = job.conn.lock();
        if state.dead {
            continue;
        }
        state.session = Some(job.session);
        state.in_flight = None;
        push_frame(&mut state, &response);
        drop(state);
        job.conn.driver.wake();
    }
}

/// Take ownership of a freshly accepted connection: nonblocking mode plus
/// the `Hello` greeting queued on the (nonblocking) output buffer, so a
/// connected-but-never-reading peer can't wedge anything.
fn adopt(shared: &Arc<Shared>, stream: TcpStream, id: u64, waker: &Arc<Waker>) -> Option<Arc<Conn>> {
    stream.set_nonblocking(true).ok()?;
    let mut state = ConnState {
        session: Some(SessionState::new(shared, id)),
        frames: FrameBuf::new(),
        pending: VecDeque::new(),
        out: Vec::new(),
        out_pos: 0,
        in_flight: None,
        dead: false,
        close_after_flush: false,
        shutdown_after_flush: false,
        flush_deadline: None,
        torn_down: false,
    };
    let hello = Response::Hello {
        session: id,
        version: SERVER_VERSION.to_string(),
    };
    state.out.extend_from_slice(&encode_frame(&hello.to_json()).ok()?);
    Some(Arc::new(Conn {
        stream,
        driver: Arc::clone(waker),
        state: Mutex::new(state),
    }))
}

/// Final teardown: cancel in-flight work, close the socket, release the
/// session slot. Idempotent via `torn_down`. `disconnect` selects the
/// disconnect-cancel accounting (only meaningful when a query was in
/// flight).
fn teardown(shared: &Shared, conn: &Conn, disconnect: bool) {
    let mut state = conn.lock();
    if state.torn_down {
        return;
    }
    state.torn_down = true;
    state.dead = true;
    let cancelled = match state.in_flight.take() {
        Some(token) => {
            token.cancel();
            true
        }
        None => false,
    };
    drop(state);
    if disconnect && cancelled {
        conquer_obs::registry()
            .counter("serve.disconnect_cancel")
            .inc();
    }
    let _ = conn.stream.shutdown(Shutdown::Both);
    shared.session_closed();
}

/// One level-triggered pass over a connection: flush, read, dispatch,
/// flush again.
fn sweep(shared: &Arc<Shared>, queue: &Arc<RunQueue>, conn: &Arc<Conn>) -> Outcome {
    let mut state = conn.lock();
    if state.dead {
        return Outcome::Close;
    }
    if !flush(conn, &mut state) {
        return Outcome::Disconnect;
    }
    if state.close_after_flush {
        return resolve_closing(&mut state);
    }
    match fill(conn, &mut state) {
        ReadStatus::Open => {}
        ReadStatus::Eof => {
            // The structural disconnect fix: a FIN is seen here even when
            // pipelined frames arrived ahead of it, because the driver
            // drains the socket instead of peeking past queued bytes.
            // In-flight work is cancelled; undispatched pipelined requests
            // are discarded — the client is gone.
            if let Some(token) = state.in_flight.take() {
                token.cancel();
                drop(state);
                conquer_obs::registry()
                    .counter("serve.disconnect_cancel")
                    .inc();
                return Outcome::Close; // cancellation already accounted
            }
            return Outcome::Close;
        }
        ReadStatus::Error => return Outcome::Disconnect,
    }
    dispatch(shared, queue, conn, &mut state);
    if state.dead {
        return Outcome::Close;
    }
    if !flush(conn, &mut state) {
        return Outcome::Disconnect;
    }
    if state.close_after_flush {
        return resolve_closing(&mut state);
    }
    Outcome::Alive
}

/// A connection in the flush-then-close state: close once the final bytes
/// are out (or the grace deadline passes with a non-reading peer).
fn resolve_closing(state: &mut ConnState) -> Outcome {
    let flushed = state.out_pos == state.out.len();
    let expired = state
        .flush_deadline
        .is_some_and(|deadline| Instant::now() >= deadline);
    if flushed || expired {
        if state.shutdown_after_flush {
            Outcome::CloseAndShutdown
        } else {
            Outcome::Close
        }
    } else {
        Outcome::Alive
    }
}

/// Write as much of `out` as the socket will take. `false` = hard error.
fn flush(conn: &Conn, state: &mut ConnState) -> bool {
    while state.out_pos < state.out.len() {
        match (&conn.stream).write(&state.out[state.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => state.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if state.out_pos == state.out.len() && state.out_pos > 0 {
        state.out.clear();
        state.out_pos = 0;
    }
    true
}

enum ReadStatus {
    Open,
    Eof,
    Error,
}

/// Drain readable bytes into the frame buffer and parse complete frames
/// into the pending FIFO. Stops at `WouldBlock` (level-triggered: the next
/// sweep resumes), the pending cap (backpressure), EOF, or an error.
fn fill(conn: &Conn, state: &mut ConnState) -> ReadStatus {
    let mut chunk = [0u8; READ_CHUNK];
    while state.pending.len() < PENDING_CAP && !state.close_after_flush {
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => return ReadStatus::Eof,
            Ok(n) => {
                state.frames.extend(&chunk[..n]);
                loop {
                    match state.frames.next_frame() {
                        Ok(Some(json)) => {
                            state.pending.push_back(Request::from_json(&json));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Framing is lost; report once and close —
                            // the same contract as the blocking path.
                            let resp = Response::Error {
                                code: ErrorCode::Protocol,
                                message: "malformed frame".to_string(),
                            };
                            push_frame(state, &resp);
                            state.close_after_flush = true;
                            state.flush_deadline = Some(Instant::now() + FLUSH_GRACE);
                            return ReadStatus::Open;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadStatus::Error,
        }
    }
    ReadStatus::Open
}

/// Answer control requests inline and hand at most one heavy request to
/// the run queue. Responses stay in request order because nothing past an
/// in-flight heavy request is dispatched until its completion clears
/// `in_flight`.
fn dispatch(shared: &Arc<Shared>, queue: &Arc<RunQueue>, conn: &Arc<Conn>, state: &mut ConnState) {
    while state.in_flight.is_none() && !state.close_after_flush && !state.dead {
        let Some(entry) = state.pending.pop_front() else {
            break;
        };
        let request = match entry {
            Ok(request) => request,
            Err(message) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message,
                };
                push_frame(state, &resp);
                continue;
            }
        };
        let session = state
            .session
            .as_mut()
            .expect("session present whenever nothing is in flight");
        match classify(request, session) {
            RequestClass::Control(request) => {
                let response = handle_control(shared, session, &request);
                push_frame(state, &response);
                match request {
                    Request::Quit => {
                        state.close_after_flush = true;
                        state.flush_deadline = Some(Instant::now() + FLUSH_GRACE);
                    }
                    Request::Shutdown => {
                        state.close_after_flush = true;
                        state.shutdown_after_flush = true;
                        state.flush_deadline = Some(Instant::now() + FLUSH_GRACE);
                    }
                    _ => {}
                }
            }
            RequestClass::Heavy(op) => {
                let queued_at = Instant::now();
                let token = CancellationToken::new();
                state.in_flight = Some(token.clone());
                let session = state.session.take().expect("checked above");
                let job = Job {
                    conn: Arc::clone(conn),
                    op,
                    session,
                    token,
                    queued_at,
                    deadline: queued_at + shared.admission.queue_wait(),
                };
                if let Err(job) = queue.push(job) {
                    // Queue closed: the server is shutting down and this
                    // driver will tear the connection down on its next
                    // pass — just restore the session state.
                    state.session = Some(job.session);
                    state.in_flight = None;
                    break;
                }
            }
        }
    }
}

/// A job whose queue-wait deadline passed while every worker was busy:
/// answer `busy` now, from the driver, with the same accounting a
/// semaphore timeout gets — timely overload behavior must not depend on a
/// worker freeing up.
fn expire_job(shared: &Shared, job: Job) {
    shared.admission.record_queue_rejection(job.queued_at.elapsed());
    let stats = shared.admission.stats();
    let response = error_response(&ServeError::Busy(format!(
        "{} queries in flight (max {}), queue wait exceeded; retry later",
        stats.in_flight, stats.max_concurrent
    )));
    let mut state = job.conn.lock();
    if state.dead {
        return;
    }
    state.session = Some(job.session);
    state.in_flight = None;
    push_frame(&mut state, &response);
    drop(state);
    job.conn.driver.wake();
}

/// Queue one response frame on the connection's output buffer. An encode
/// failure (only possible for a >64 MiB payload) poisons the connection —
/// the client would otherwise wait forever for a frame that cannot exist.
fn push_frame(state: &mut ConnState, response: &Response) {
    match encode_frame(&response.to_json()) {
        Ok(bytes) => state.out.extend_from_slice(&bytes),
        Err(_) => state.dead = true,
    }
}
