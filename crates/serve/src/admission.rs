//! Admission control: a bounded run queue in front of the engine.
//!
//! A classic condvar semaphore with a twist: waiters give up after a
//! configurable queue-wait deadline and the request maps to a structured
//! `busy` error instead of piling up behind slow queries. That keeps an
//! overloaded server responsive — clients get a fast, retryable rejection
//! rather than a hang — and bounds the memory held by in-flight work.
//!
//! Permits are RAII ([`Permit`] releases on drop, including on panic and
//! on the early-return paths of the session loop), so a slot can never
//! leak.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters the stats endpoint reports (see [`Admission::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries currently holding a permit.
    pub in_flight: usize,
    /// Waiters currently queued for a permit.
    pub queue_depth: usize,
    pub max_concurrent: usize,
    pub admitted: u64,
    pub rejected: u64,
}

struct State {
    in_flight: usize,
    waiting: usize,
}

/// Semaphore with a queue-wait deadline. Shared by all sessions of one
/// server.
pub struct Admission {
    state: Mutex<State>,
    cond: Condvar,
    max_concurrent: usize,
    queue_wait: Duration,
    admitted: AtomicU64,
    rejected: AtomicU64,
    /// Mirror of `state.waiting` readable without the mutex (stats path).
    waiting_gauge: AtomicUsize,
}

/// RAII admission slot; dropping it releases the slot and wakes one waiter.
pub struct Permit {
    admission: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.admission.lock();
        state.in_flight -= 1;
        drop(state);
        self.admission.cond.notify_one();
    }
}

impl Admission {
    pub fn new(max_concurrent: usize, queue_wait: Duration) -> Arc<Admission> {
        Arc::new(Admission {
            state: Mutex::new(State {
                in_flight: 0,
                waiting: 0,
            }),
            cond: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            queue_wait,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            waiting_gauge: AtomicUsize::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The configured queue-wait deadline (the event loop stamps it onto
    /// run-queue entries so drivers can expire them to `busy` in time).
    pub fn queue_wait(&self) -> Duration {
        self.queue_wait
    }

    /// Wait up to the queue-wait deadline for a slot. `None` means the
    /// deadline passed with the server still at capacity — the caller maps
    /// that to a `busy` response.
    pub fn try_admit(self: &Arc<Admission>) -> Option<Permit> {
        self.try_admit_from(Instant::now())
    }

    /// [`try_admit`](Admission::try_admit) with the queue-wait measured
    /// from `entered` instead of now. The event loop uses this so time a
    /// request already spent waiting in the run queue for a free worker
    /// counts against the same deadline as time spent waiting on the
    /// semaphore — queueing anywhere is queueing. A request whose deadline
    /// has already passed still admits immediately when a slot is free
    /// (the deadline bounds *waiting*, matching the PR-4 semantics).
    pub fn try_admit_from(self: &Arc<Admission>, entered: Instant) -> Option<Permit> {
        let deadline = entered + self.queue_wait;
        let mut state = self.lock();
        // Queue depth as this request observed it (before it queued
        // itself), so the histogram reflects what admissions contend with.
        conquer_obs::registry()
            .histogram("serve.admission.queue_depth")
            .record(state.waiting as u64);
        if state.in_flight >= self.max_concurrent {
            state.waiting += 1;
            self.waiting_gauge.fetch_add(1, Ordering::Relaxed);
            while state.in_flight >= self.max_concurrent {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _timed_out) = self
                    .cond
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
            state.waiting -= 1;
            self.waiting_gauge.fetch_sub(1, Ordering::Relaxed);
            if state.in_flight >= self.max_concurrent {
                drop(state);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                let registry = conquer_obs::registry();
                registry.counter("serve.admission.rejected").inc();
                registry
                    .histogram("serve.admission.wait.us")
                    .record(entered.elapsed().as_micros() as u64);
                return None;
            }
        }
        state.in_flight += 1;
        drop(state);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let registry = conquer_obs::registry();
        registry.counter("serve.admission.admitted").inc();
        registry
            .histogram("serve.admission.wait.us")
            .record(entered.elapsed().as_micros() as u64);
        Some(Permit {
            admission: Arc::clone(self),
        })
    }

    /// Record a rejection decided *outside* the semaphore: the event
    /// loop's run queue expires a request whose deadline passed before any
    /// worker could even attempt admission, and that rejection must feed
    /// the same counters/histograms as a semaphore timeout so `stats` and
    /// `/metrics` stay consistent across serving modes.
    pub fn record_queue_rejection(&self, waited: Duration) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let registry = conquer_obs::registry();
        registry.counter("serve.admission.rejected").inc();
        registry
            .histogram("serve.admission.wait.us")
            .record(waited.as_micros() as u64);
    }

    pub fn stats(&self) -> AdmissionStats {
        let state = self.lock();
        AdmissionStats {
            in_flight: state.in_flight,
            queue_depth: state.waiting,
            max_concurrent: self.max_concurrent,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let admission = Admission::new(2, Duration::from_millis(10));
        let a = admission.try_admit().expect("slot 1");
        let b = admission.try_admit().expect("slot 2");
        assert!(admission.try_admit().is_none(), "third must time out");
        let stats = admission.stats();
        assert_eq!(stats.in_flight, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        drop(a);
        let c = admission.try_admit().expect("slot freed by drop");
        drop(b);
        drop(c);
        assert_eq!(admission.stats().in_flight, 0);
    }

    #[test]
    fn waiter_is_woken_by_release() {
        let admission = Admission::new(1, Duration::from_secs(5));
        let permit = admission.try_admit().expect("slot");
        let admitted = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let waiter = {
                let admission = Arc::clone(&admission);
                let admitted = Arc::clone(&admitted);
                scope.spawn(move || {
                    let p = admission.try_admit();
                    admitted.store(p.is_some(), Ordering::SeqCst);
                })
            };
            // Give the waiter time to queue, then release.
            while admission.stats().queue_depth == 0 {
                std::thread::yield_now();
            }
            drop(permit);
            waiter.join().expect("waiter thread");
        });
        assert!(
            admitted.load(Ordering::SeqCst),
            "waiter should get the slot"
        );
    }

    #[test]
    fn expired_entry_still_admits_when_a_slot_is_free() {
        let admission = Admission::new(1, Duration::from_millis(1));
        // Deadline long past, but nothing in flight: the deadline bounds
        // waiting, not admission, so this must succeed immediately.
        let entered = Instant::now() - Duration::from_secs(5);
        let permit = admission.try_admit_from(entered).expect("free slot admits");
        drop(permit);
        // With the slot held, the already-expired deadline rejects at once.
        let _held = admission.try_admit().expect("slot");
        let started = Instant::now();
        assert!(admission.try_admit_from(entered).is_none());
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "expired deadline must not wait"
        );
    }

    #[test]
    fn timeout_vs_release_stress_never_leaks_or_overcommits() {
        // Hammer a width-2 semaphore with waiters whose deadlines race the
        // holders' releases, from several threads at once. Whatever the
        // interleaving, every attempt resolves as exactly one of
        // admitted/rejected, in-flight never exceeds the width, and the
        // final state is fully drained.
        let admission = Admission::new(2, Duration::from_millis(3));
        let attempts = Arc::new(AtomicU64::new(0));
        let over_width = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for t in 0..6 {
                let admission = Arc::clone(&admission);
                let attempts = Arc::clone(&attempts);
                let over_width = Arc::clone(&over_width);
                scope.spawn(move || {
                    for i in 0..40u64 {
                        attempts.fetch_add(1, Ordering::Relaxed);
                        if let Some(permit) = admission.try_admit() {
                            if admission.stats().in_flight > 2 {
                                over_width.store(true, Ordering::Relaxed);
                            }
                            // Hold times straddling the queue-wait deadline
                            // so timeouts and releases genuinely interleave.
                            std::thread::sleep(Duration::from_micros(
                                (t as u64 * 137 + i * 41) % 4000,
                            ));
                            drop(permit);
                        }
                    }
                });
            }
        });
        assert!(!over_width.load(Ordering::Relaxed), "semaphore overcommitted");
        let stats = admission.stats();
        assert_eq!(stats.in_flight, 0, "every permit must be released");
        assert_eq!(stats.queue_depth, 0, "no waiter may be left registered");
        assert_eq!(
            stats.admitted + stats.rejected,
            attempts.load(Ordering::Relaxed),
            "every attempt resolves exactly once"
        );
        // The drained semaphore must still admit at full width.
        let a = admission.try_admit().expect("slot 1 after stress");
        let b = admission.try_admit().expect("slot 2 after stress");
        drop(a);
        drop(b);
    }

    #[test]
    fn permit_released_on_panic() {
        let admission = Admission::new(1, Duration::from_millis(50));
        let result = std::thread::scope(|scope| {
            let admission = Arc::clone(&admission);
            scope
                .spawn(move || {
                    let _permit = admission.try_admit().expect("slot");
                    panic!("query worker died mid-flight");
                })
                .join()
        });
        assert!(result.is_err(), "the worker must have panicked");
        assert_eq!(
            admission.stats().in_flight,
            0,
            "panic unwound without releasing the permit"
        );
        let permit = admission
            .try_admit()
            .expect("slot must be reusable after a panicked holder");
        drop(permit);
    }

    #[test]
    fn external_rejection_feeds_the_same_counters() {
        let admission = Admission::new(1, Duration::from_millis(10));
        let before = admission.stats().rejected;
        admission.record_queue_rejection(Duration::from_millis(12));
        assert_eq!(admission.stats().rejected, before + 1);
        assert_eq!(admission.stats().in_flight, 0);
    }
}
