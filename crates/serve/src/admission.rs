//! Admission control: a bounded run queue in front of the engine.
//!
//! A classic condvar semaphore with a twist: waiters give up after a
//! configurable queue-wait deadline and the request maps to a structured
//! `busy` error instead of piling up behind slow queries. That keeps an
//! overloaded server responsive — clients get a fast, retryable rejection
//! rather than a hang — and bounds the memory held by in-flight work.
//!
//! Permits are RAII ([`Permit`] releases on drop, including on panic and
//! on the early-return paths of the session loop), so a slot can never
//! leak.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counters the stats endpoint reports (see [`Admission::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries currently holding a permit.
    pub in_flight: usize,
    /// Waiters currently queued for a permit.
    pub queue_depth: usize,
    pub max_concurrent: usize,
    pub admitted: u64,
    pub rejected: u64,
}

struct State {
    in_flight: usize,
    waiting: usize,
}

/// Semaphore with a queue-wait deadline. Shared by all sessions of one
/// server.
pub struct Admission {
    state: Mutex<State>,
    cond: Condvar,
    max_concurrent: usize,
    queue_wait: Duration,
    admitted: AtomicU64,
    rejected: AtomicU64,
    /// Mirror of `state.waiting` readable without the mutex (stats path).
    waiting_gauge: AtomicUsize,
}

/// RAII admission slot; dropping it releases the slot and wakes one waiter.
pub struct Permit {
    admission: Arc<Admission>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut state = self.admission.lock();
        state.in_flight -= 1;
        drop(state);
        self.admission.cond.notify_one();
    }
}

impl Admission {
    pub fn new(max_concurrent: usize, queue_wait: Duration) -> Arc<Admission> {
        Arc::new(Admission {
            state: Mutex::new(State {
                in_flight: 0,
                waiting: 0,
            }),
            cond: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            queue_wait,
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            waiting_gauge: AtomicUsize::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Wait up to the queue-wait deadline for a slot. `None` means the
    /// deadline passed with the server still at capacity — the caller maps
    /// that to a `busy` response.
    pub fn try_admit(self: &Arc<Admission>) -> Option<Permit> {
        let entered = Instant::now();
        let deadline = entered + self.queue_wait;
        let mut state = self.lock();
        // Queue depth as this request observed it (before it queued
        // itself), so the histogram reflects what admissions contend with.
        conquer_obs::registry()
            .histogram("serve.admission.queue_depth")
            .record(state.waiting as u64);
        if state.in_flight >= self.max_concurrent {
            state.waiting += 1;
            self.waiting_gauge.fetch_add(1, Ordering::Relaxed);
            while state.in_flight >= self.max_concurrent {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (next, _timed_out) = self
                    .cond
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
            state.waiting -= 1;
            self.waiting_gauge.fetch_sub(1, Ordering::Relaxed);
            if state.in_flight >= self.max_concurrent {
                drop(state);
                self.rejected.fetch_add(1, Ordering::Relaxed);
                let registry = conquer_obs::registry();
                registry.counter("serve.admission.rejected").inc();
                registry
                    .histogram("serve.admission.wait.us")
                    .record(entered.elapsed().as_micros() as u64);
                return None;
            }
        }
        state.in_flight += 1;
        drop(state);
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let registry = conquer_obs::registry();
        registry.counter("serve.admission.admitted").inc();
        registry
            .histogram("serve.admission.wait.us")
            .record(entered.elapsed().as_micros() as u64);
        Some(Permit {
            admission: Arc::clone(self),
        })
    }

    pub fn stats(&self) -> AdmissionStats {
        let state = self.lock();
        AdmissionStats {
            in_flight: state.in_flight,
            queue_depth: state.waiting,
            max_concurrent: self.max_concurrent,
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn admits_up_to_capacity_then_rejects() {
        let admission = Admission::new(2, Duration::from_millis(10));
        let a = admission.try_admit().expect("slot 1");
        let b = admission.try_admit().expect("slot 2");
        assert!(admission.try_admit().is_none(), "third must time out");
        let stats = admission.stats();
        assert_eq!(stats.in_flight, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.rejected, 1);
        drop(a);
        let c = admission.try_admit().expect("slot freed by drop");
        drop(b);
        drop(c);
        assert_eq!(admission.stats().in_flight, 0);
    }

    #[test]
    fn waiter_is_woken_by_release() {
        let admission = Admission::new(1, Duration::from_secs(5));
        let permit = admission.try_admit().expect("slot");
        let admitted = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let waiter = {
                let admission = Arc::clone(&admission);
                let admitted = Arc::clone(&admitted);
                scope.spawn(move || {
                    let p = admission.try_admit();
                    admitted.store(p.is_some(), Ordering::SeqCst);
                })
            };
            // Give the waiter time to queue, then release.
            while admission.stats().queue_depth == 0 {
                std::thread::yield_now();
            }
            drop(permit);
            waiter.join().expect("waiter thread");
        });
        assert!(
            admitted.load(Ordering::SeqCst),
            "waiter should get the slot"
        );
    }
}
