//! The metrics exposition endpoint: a std-only HTTP/1.1 GET responder.
//!
//! Deliberately minimal — it answers exactly three read-only paths and
//! closes every connection after one response, so there is no keep-alive
//! state, no chunking, and no framing beyond `Content-Length`:
//!
//! * `/metrics` — Prometheus text format (version 0.0.4): every registry
//!   counter and histogram (cumulative `_bucket` lines derived from the
//!   log-scale buckets), plus point-in-time server gauges (in-flight
//!   queries, admission queue depth, active sessions, cache entries).
//! * `/metrics.json` — the registry's JSON snapshot plus the same gauges.
//! * `/traces` — the flight-recorder dump (`?limit=N` caps the entries).
//!
//! Requests are served inline on the single metrics thread: scrapes are
//! cheap, and serializing them bounds the resources a scraper can pin.
//! Read/write timeouts keep one stalled client from wedging the endpoint
//! for long, and shutdown wakes the loop with a loopback connect (the
//! same trick the main accept loop uses).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use conquer_obs::{flight_recorder, prometheus_text, push_gauge, registry, Json};

use crate::server::Shared;

/// Cap on an inbound request head; GETs for three short paths fit easily.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a scrape is a local, sub-millisecond
/// affair, so anything this slow is a stalled or hostile peer.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Default and maximum `/traces` entries per response.
const TRACES_DEFAULT_LIMIT: usize = 64;
const TRACES_MAX_LIMIT: usize = 1024;

pub(crate) fn metrics_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.is_shutting_down() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        registry().counter("serve.metrics.requests").inc();
        serve_one(stream, &shared);
    }
}

fn serve_one(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        let _ = respond(
            &mut stream,
            "400 Bad Request",
            "text/plain; charset=utf-8",
            "bad request\n",
        );
        return;
    };
    // Strip the query string; `/traces` is the only path that reads it.
    let (route, query) = match path.split_once('?') {
        Some((route, query)) => (route, Some(query)),
        None => (path.as_str(), None),
    };
    let result = match route {
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            &metrics_text(shared),
        ),
        "/metrics.json" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &metrics_json(shared).render(),
        ),
        "/traces" => {
            let limit = query
                .and_then(parse_limit)
                .unwrap_or(TRACES_DEFAULT_LIMIT)
                .min(TRACES_MAX_LIMIT);
            respond(
                &mut stream,
                "200 OK",
                "application/json",
                &flight_recorder().to_json(limit).render(),
            )
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /metrics.json, or /traces\n",
        ),
    };
    let _ = result;
}

/// Read the request head and return the GET path, or `None` on anything
/// malformed (non-GET methods included — every resource here is a read).
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let mut scanned = 0;
    while !head_complete(&buf, &mut scanned) {
        if buf.len() >= MAX_REQUEST_BYTES {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = head.lines().next()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

/// Is the request head (terminated by a blank line) complete?
///
/// `scanned` carries the high-water mark of bytes already examined across
/// calls, so each call only scans the newly-arrived suffix (re-reading a
/// 3-byte overlap in case a `\r\n\r\n` terminator straddles two reads).
/// Without the offset this re-scanned the whole buffer after every chunk —
/// quadratic against a slow-trickle client.
fn head_complete(buf: &[u8], scanned: &mut usize) -> bool {
    let start = scanned.saturating_sub(3);
    let tail = &buf[start..];
    let hit =
        tail.windows(4).any(|w| w == b"\r\n\r\n") || tail.windows(2).any(|w| w == b"\n\n");
    *scanned = buf.len();
    hit
}

fn parse_limit(query: &str) -> Option<usize> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("limit="))
        .and_then(|v| v.parse().ok())
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Point-in-time server gauges, shared by both exposition formats.
fn server_gauges(shared: &Arc<Shared>) -> Vec<(&'static str, u64)> {
    let admission = shared.admission.stats();
    let cache = shared.cache.stats();
    vec![
        ("serve.in_flight", admission.in_flight as u64),
        (
            "serve.admission.queue_depth.now",
            admission.queue_depth as u64,
        ),
        ("serve.active_sessions", shared.active_sessions() as u64),
        ("serve.cache.entries", cache.entries as u64),
        ("serve.flight.recorded", flight_recorder().recorded()),
    ]
}

fn metrics_text(shared: &Arc<Shared>) -> String {
    let mut out = prometheus_text(registry());
    for (name, value) in server_gauges(shared) {
        push_gauge(&mut out, name, value);
    }
    out
}

fn metrics_json(shared: &Arc<Shared>) -> Json {
    let gauges = server_gauges(shared)
        .into_iter()
        .map(|(name, value)| (name.to_string(), Json::UInt(value)))
        .collect::<Vec<_>>();
    let mut obj = registry().snapshot_json();
    obj.push("gauges", Json::Obj(gauges));
    obj
}

#[cfg(test)]
mod tests {
    use super::head_complete;

    /// Simulates a byte-at-a-time writer: completion must be detected at
    /// exactly the final terminator byte, and each call must only scan the
    /// new suffix (tracked via the `scanned` high-water mark).
    #[test]
    fn head_complete_tracks_a_scan_offset_byte_at_a_time() {
        for head in [
            b"GET /metrics HTTP/1.1\r\nHost: x\r\nUser-Agent: trickle\r\n\r\n".as_slice(),
            b"GET /traces?limit=2 HTTP/1.1\nHost: x\n\n".as_slice(),
        ] {
            let mut buf = Vec::new();
            let mut scanned = 0;
            for (i, byte) in head.iter().enumerate() {
                buf.push(*byte);
                let complete = head_complete(&buf, &mut scanned);
                assert_eq!(
                    complete,
                    i == head.len() - 1,
                    "completion misdetected at byte {i} of {head:?}"
                );
                assert_eq!(scanned, buf.len(), "scan offset must track the buffer");
            }
        }
    }

    /// A terminator split across two reads must still be found — the
    /// resumed scan overlaps the previous tail by 3 bytes.
    #[test]
    fn head_complete_finds_a_terminator_split_across_reads() {
        let mut buf: Vec<u8> = b"GET / HTTP/1.1\r\nA: b\r\n".to_vec();
        let mut scanned = 0;
        assert!(!head_complete(&buf, &mut scanned));
        buf.extend_from_slice(b"\r\n");
        assert!(head_complete(&buf, &mut scanned));
    }
}
