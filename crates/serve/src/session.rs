//! The thread-per-connection fallback (`io_threads: 0`): one blocking
//! request loop per connection plus the disconnect watchdog. This was the
//! only serving mode through PR 4; the event loop ([`crate::event`]) is
//! the default now, and this path is kept for one release as the
//! differential oracle the soak test compares wire output against. All
//! request semantics live in [`crate::state`], shared with the event
//! loop — this module only supplies the blocking transport and the
//! watchdog-based disconnect detection.
//!
//! ## The disconnect watchdog
//!
//! The protocol is strictly request/response, so while a query executes the
//! session thread is *not* reading the socket — a client that gives up and
//! disconnects would otherwise leave its query burning CPU until the next
//! write fails. Each session therefore runs one long-lived watchdog thread
//! over a `try_clone` of the stream. While a query is in flight the
//! watchdog `peek`s the socket on a short read timeout; `Ok(0)` (EOF) or a
//! hard error cancels the query's [`CancellationToken`], and the engine
//! unwinds with `EngineError::Cancelled` at the next cooperative check.
//!
//! **Known limitation (the reason this design is being retired):** when a
//! client pipelines a frame and then disconnects, the queued bytes make
//! `peek` return `Ok(n)` forever — the FIN behind them is invisible, so
//! the in-flight query is never cancelled. The event loop detects EOF by
//! actually draining the socket and does not have this bug; the
//! `pipelined_disconnect` regression test demonstrates the difference.
//!
//! `try_clone` duplicates the fd onto the *same* file description, so the
//! watchdog's read timeout is visible to the session's own reads. Both the
//! timeout install (watchdog) and the restore (session, after the query)
//! happen under the watch-state mutex, so the session never blocks on a
//! frame read with a stale poll timeout installed; a belt-and-braces retry
//! on `WouldBlock` in the read loop covers the remaining impossible cases.
//!
//! Each armed query carries a *generation* number. A pipelined client can
//! finish query N and start query N+1 within one poll cycle, so the
//! watchdog may never observe the intervening `Idle` — it compares
//! generations on every poll and, on a change, re-clones the current token
//! and re-installs the poll timeout (the session restored the socket to
//! blocking reads when query N finished). Without this the watchdog would
//! block forever holding query N's already-finished token, and a later
//! disconnect would cancel nothing.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use conquer_engine::CancellationToken;
use conquer_obs::Json;

use crate::protocol::{read_frame, write_frame, ErrorCode, Request, Response};
use crate::server::Shared;
use crate::state::{classify, handle_control, run_heavy, RequestClass, SessionState, SERVER_VERSION};

/// Poll interval of the disconnect watchdog; bounds how long a dropped
/// connection's query keeps running past the governor's cooperative check.
const WATCHDOG_POLL: Duration = Duration::from_millis(20);

enum WatchState {
    /// No query in flight; the watchdog sleeps on the condvar.
    Idle,
    /// A query is executing under this token; the watchdog polls the
    /// socket. `gen` distinguishes consecutive queries: the watchdog may
    /// see `Watching` → `Watching` without an intervening `Idle` (see
    /// module docs) and must refresh its token and poll timeout.
    Watching { token: CancellationToken, gen: u64 },
    /// The session is over; the watchdog exits.
    Closed,
}

struct WatchSlot {
    state: Mutex<WatchState>,
    cond: Condvar,
    /// Source of `Watching::gen` values; bumped per armed query.
    next_gen: AtomicU64,
}

impl WatchSlot {
    fn lock(&self) -> std::sync::MutexGuard<'_, WatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Serve one connection to completion. Returns `true` when the client asked
/// for a server shutdown.
pub(crate) fn run_session(shared: Arc<Shared>, mut stream: TcpStream, id: u64) -> bool {
    let watch = Arc::new(WatchSlot {
        state: Mutex::new(WatchState::Idle),
        cond: Condvar::new(),
        next_gen: AtomicU64::new(0),
    });
    let mut state = SessionState::new(&shared, id);
    let watch_stream = stream.try_clone().ok();

    let shutdown_requested = std::thread::scope(|scope| {
        let watcher = watch_stream.map(|ws| {
            let watch = Arc::clone(&watch);
            scope.spawn(move || watchdog(ws, &watch))
        });
        let wants_shutdown = request_loop(&shared, &mut state, &watch, &mut stream);
        {
            let mut ws = watch.lock();
            *ws = WatchState::Closed;
        }
        watch.cond.notify_all();
        // Unblock a watchdog mid-`peek` so the scope can join promptly.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        if let Some(w) = watcher {
            let _ = w.join();
        }
        wants_shutdown
    });
    shutdown_requested
}

fn watchdog(stream: TcpStream, watch: &WatchSlot) {
    let mut buf = [0u8; 1];
    loop {
        // Sleep until a query starts; install the poll timeout under the
        // same lock that observes `Watching` (see module docs).
        let (mut token, mut gen) = {
            let mut state = watch.lock();
            loop {
                match &*state {
                    WatchState::Idle => {
                        state = watch.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    WatchState::Watching { token, gen } => {
                        let armed = (token.clone(), *gen);
                        let _ = stream.set_read_timeout(Some(WATCHDOG_POLL));
                        break armed;
                    }
                    WatchState::Closed => return,
                }
            }
        };
        loop {
            {
                let state = watch.lock();
                match &*state {
                    WatchState::Watching {
                        token: current,
                        gen: current_gen,
                    } => {
                        // A new query was armed without an observed Idle:
                        // the session restored blocking reads in between,
                        // so re-install the poll timeout (under the lock,
                        // like the initial install) and track the new
                        // query's token instead of the finished one's.
                        if *current_gen != gen {
                            gen = *current_gen;
                            token = current.clone();
                            let _ = stream.set_read_timeout(Some(WATCHDOG_POLL));
                        }
                    }
                    WatchState::Idle => break,
                    WatchState::Closed => return,
                }
            }
            match stream.peek(&mut buf) {
                // EOF: the client hung up mid-query.
                Ok(0) => {
                    token.cancel();
                    conquer_obs::registry()
                        .counter("serve.disconnect_cancel")
                        .inc();
                    return;
                }
                // Bytes queued (a pipelined frame): the peer is alive — as
                // far as `peek` can tell. This is the blind spot: a FIN
                // behind these bytes is invisible, so a pipelining client
                // that disconnects mid-query is never noticed here.
                Ok(_) => std::thread::sleep(WATCHDOG_POLL),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                // Reset / aborted: treat like a disconnect.
                Err(_) => {
                    token.cancel();
                    conquer_obs::registry()
                        .counter("serve.disconnect_cancel")
                        .inc();
                    return;
                }
            }
        }
    }
}

/// Read/dispatch/respond until EOF, `quit`, `shutdown`, or an
/// unrecoverable frame error. Returns `true` on `shutdown`.
fn request_loop(
    shared: &Arc<Shared>,
    state: &mut SessionState,
    watch: &WatchSlot,
    stream: &mut TcpStream,
) -> bool {
    let hello = Response::Hello {
        session: state.id,
        version: SERVER_VERSION.to_string(),
    };
    // The accept loop installed a write timeout so a connected-but-never-
    // reading peer can't wedge this greeting; drop back to untimed writes
    // for the request loop proper once the client proves it reads.
    if write_frame(stream, &hello.to_json()).is_err() {
        return false;
    }
    let _ = stream.set_write_timeout(None);
    loop {
        let json = match read_request(stream) {
            Ok(Some(json)) => json,
            Ok(None) => return false,
            Err(_) => {
                // Framing is lost; report once and close.
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: "malformed frame".to_string(),
                };
                let _ = write_frame(stream, &resp.to_json());
                return false;
            }
        };
        let request = match Request::from_json(&json) {
            Ok(req) => req,
            Err(message) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message,
                };
                if write_frame(stream, &resp.to_json()).is_err() {
                    return false;
                }
                continue;
            }
        };
        match classify(request, state) {
            RequestClass::Control(request) => {
                let response = handle_control(shared, state, &request);
                if write_frame(stream, &response.to_json()).is_err() {
                    return false;
                }
                match request {
                    Request::Quit => return false,
                    Request::Shutdown => return true,
                    _ => {}
                }
            }
            RequestClass::Heavy(op) => {
                let queued_at = Instant::now();
                let token = CancellationToken::new();
                let response =
                    with_watch(watch, stream, &token, || {
                        run_heavy(shared, state, &op, &token, queued_at)
                    });
                if write_frame(stream, &response.to_json()).is_err() {
                    return false;
                }
            }
        }
    }
}

/// Run `f` (plan/execute work) with the disconnect watchdog armed on
/// `token`. Restores the socket to blocking reads afterwards.
fn with_watch<T>(
    watch: &WatchSlot,
    stream: &TcpStream,
    token: &CancellationToken,
    f: impl FnOnce() -> T,
) -> T {
    {
        let mut state = watch.lock();
        *state = WatchState::Watching {
            token: token.clone(),
            gen: watch.next_gen.fetch_add(1, Ordering::Relaxed),
        };
    }
    watch.cond.notify_all();
    let result = f();
    {
        let mut state = watch.lock();
        if !matches!(&*state, WatchState::Closed) {
            *state = WatchState::Idle;
        }
        // Under the same lock as the watchdog's install: after this,
        // the session socket is guaranteed back to blocking reads.
        let _ = stream.set_read_timeout(None);
    }
    result
}

/// [`read_frame`] with a retry on spurious `WouldBlock`/`TimedOut` — a
/// safety net for the (lock-ordered, see module docs) watchdog timeout
/// races; never expected to loop in practice.
fn read_request(stream: &mut TcpStream) -> io::Result<Option<Json>> {
    loop {
        match read_frame(stream) {
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            other => return other,
        }
    }
}
