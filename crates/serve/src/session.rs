//! Per-connection session logic: the request loop, session options, the
//! prepared-statement table, and the disconnect watchdog that turns a
//! dropped connection into a governor cancellation.
//!
//! ## The disconnect watchdog
//!
//! The protocol is strictly request/response, so while a query executes the
//! session thread is *not* reading the socket — a client that gives up and
//! disconnects would otherwise leave its query burning CPU until the next
//! write fails. Each session therefore runs one long-lived watchdog thread
//! over a `try_clone` of the stream. While a query is in flight the
//! watchdog `peek`s the socket on a short read timeout; `Ok(0)` (EOF) or a
//! hard error cancels the query's [`CancellationToken`], and the engine
//! unwinds with `EngineError::Cancelled` at the next cooperative check.
//!
//! `try_clone` duplicates the fd onto the *same* file description, so the
//! watchdog's read timeout is visible to the session's own reads. Both the
//! timeout install (watchdog) and the restore (session, after the query)
//! happen under the watch-state mutex, so the session never blocks on a
//! frame read with a stale poll timeout installed; a belt-and-braces retry
//! on `WouldBlock` in the read loop covers the remaining impossible cases.
//!
//! Each armed query carries a *generation* number. A pipelined client can
//! finish query N and start query N+1 within one poll cycle, so the
//! watchdog may never observe the intervening `Idle` — it compares
//! generations on every poll and, on a change, re-clones the current token
//! and re-installs the poll timeout (the session restored the socket to
//! blocking reads when query N finished). Without this the watchdog would
//! block forever holding query N's already-finished token, and a later
//! disconnect would cancel nothing.

use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime};

use conquer_core::RewriteError;
use conquer_engine::{CancellationToken, EngineError, ExecOptions, Rows};
use conquer_obs::{flight_recorder, Json, QueryTrace, TraceContext, TripSnapshot};

use crate::admission::Permit;
use crate::cache::CachedStatement;
use crate::error::ServeError;
use crate::protocol::{
    read_frame, write_frame, ErrorCode, QueryOutcome, Request, Response, Strategy,
};
use crate::server::Shared;

/// Wire-protocol version reported in the `Hello` frame.
pub const SERVER_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Poll interval of the disconnect watchdog; bounds how long a dropped
/// connection's query keeps running past the governor's cooperative check.
const WATCHDOG_POLL: Duration = Duration::from_millis(20);

enum WatchState {
    /// No query in flight; the watchdog sleeps on the condvar.
    Idle,
    /// A query is executing under this token; the watchdog polls the
    /// socket. `gen` distinguishes consecutive queries: the watchdog may
    /// see `Watching` → `Watching` without an intervening `Idle` (see
    /// module docs) and must refresh its token and poll timeout.
    Watching { token: CancellationToken, gen: u64 },
    /// The session is over; the watchdog exits.
    Closed,
}

struct WatchSlot {
    state: Mutex<WatchState>,
    cond: Condvar,
    /// Source of `Watching::gen` values; bumped per armed query.
    next_gen: AtomicU64,
}

impl WatchSlot {
    fn lock(&self) -> std::sync::MutexGuard<'_, WatchState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

struct Session {
    shared: Arc<Shared>,
    id: u64,
    options: ExecOptions,
    strategy: Strategy,
    statements: HashMap<u64, Arc<CachedStatement>>,
    next_statement: u64,
    watch: Arc<WatchSlot>,
    /// Slow-query log threshold in microseconds (0 = disabled); starts at
    /// the server default, overridable with `SET slow_query_us`.
    slow_query_us: u64,
}

/// Serve one connection to completion. Returns `true` when the client asked
/// for a server shutdown.
pub(crate) fn run_session(shared: Arc<Shared>, mut stream: TcpStream, id: u64) -> bool {
    let watch = Arc::new(WatchSlot {
        state: Mutex::new(WatchState::Idle),
        cond: Condvar::new(),
        next_gen: AtomicU64::new(0),
    });
    let slow_query_us = shared.slow_query_us;
    let mut session = Session {
        shared,
        id,
        options: ExecOptions::default(),
        strategy: Strategy::default(),
        statements: HashMap::new(),
        next_statement: 1,
        watch: Arc::clone(&watch),
        slow_query_us,
    };
    let watch_stream = stream.try_clone().ok();

    let shutdown_requested = std::thread::scope(|scope| {
        let watcher = watch_stream.map(|ws| {
            let watch = Arc::clone(&watch);
            scope.spawn(move || watchdog(ws, &watch))
        });
        let wants_shutdown = session.request_loop(&mut stream);
        {
            let mut state = watch.lock();
            *state = WatchState::Closed;
        }
        watch.cond.notify_all();
        // Unblock a watchdog mid-`peek` so the scope can join promptly.
        let _ = stream.shutdown(std::net::Shutdown::Both);
        if let Some(w) = watcher {
            let _ = w.join();
        }
        wants_shutdown
    });
    shutdown_requested
}

fn watchdog(stream: TcpStream, watch: &WatchSlot) {
    let mut buf = [0u8; 1];
    loop {
        // Sleep until a query starts; install the poll timeout under the
        // same lock that observes `Watching` (see module docs).
        let (mut token, mut gen) = {
            let mut state = watch.lock();
            loop {
                match &*state {
                    WatchState::Idle => {
                        state = watch.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                    }
                    WatchState::Watching { token, gen } => {
                        let armed = (token.clone(), *gen);
                        let _ = stream.set_read_timeout(Some(WATCHDOG_POLL));
                        break armed;
                    }
                    WatchState::Closed => return,
                }
            }
        };
        loop {
            {
                let state = watch.lock();
                match &*state {
                    WatchState::Watching {
                        token: current,
                        gen: current_gen,
                    } => {
                        // A new query was armed without an observed Idle:
                        // the session restored blocking reads in between,
                        // so re-install the poll timeout (under the lock,
                        // like the initial install) and track the new
                        // query's token instead of the finished one's.
                        if *current_gen != gen {
                            gen = *current_gen;
                            token = current.clone();
                            let _ = stream.set_read_timeout(Some(WATCHDOG_POLL));
                        }
                    }
                    WatchState::Idle => break,
                    WatchState::Closed => return,
                }
            }
            match stream.peek(&mut buf) {
                // EOF: the client hung up mid-query.
                Ok(0) => {
                    token.cancel();
                    conquer_obs::registry()
                        .counter("serve.disconnect_cancel")
                        .inc();
                    return;
                }
                // Bytes queued (a pipelined frame): the peer is alive.
                Ok(_) => std::thread::sleep(WATCHDOG_POLL),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                // Reset / aborted: treat like a disconnect.
                Err(_) => {
                    token.cancel();
                    conquer_obs::registry()
                        .counter("serve.disconnect_cancel")
                        .inc();
                    return;
                }
            }
        }
    }
}

impl Session {
    /// Read/dispatch/respond until EOF, `quit`, `shutdown`, or an
    /// unrecoverable frame error. Returns `true` on `shutdown`.
    fn request_loop(&mut self, stream: &mut TcpStream) -> bool {
        let hello = Response::Hello {
            session: self.id,
            version: SERVER_VERSION.to_string(),
        };
        if write_frame(stream, &hello.to_json()).is_err() {
            return false;
        }
        loop {
            let json = match read_request(stream) {
                Ok(Some(json)) => json,
                Ok(None) => return false,
                Err(_) => {
                    // Framing is lost; report once and close.
                    let resp = Response::Error {
                        code: ErrorCode::Protocol,
                        message: "malformed frame".to_string(),
                    };
                    let _ = write_frame(stream, &resp.to_json());
                    return false;
                }
            };
            let request = match Request::from_json(&json) {
                Ok(req) => req,
                Err(message) => {
                    let resp = Response::Error {
                        code: ErrorCode::Protocol,
                        message,
                    };
                    if write_frame(stream, &resp.to_json()).is_err() {
                        return false;
                    }
                    continue;
                }
            };
            let response = self.handle(&request, stream);
            if write_frame(stream, &response.to_json()).is_err() {
                return false;
            }
            match request {
                Request::Quit => return false,
                Request::Shutdown => return true,
                _ => {}
            }
        }
    }

    fn handle(&mut self, request: &Request, stream: &TcpStream) -> Response {
        match request {
            Request::Ping | Request::Quit | Request::Shutdown => Response::Ok,
            Request::Set { name, value } => match self.set_option(name, value) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            },
            Request::Query { sql, strategy } => {
                let strategy = strategy.unwrap_or(self.strategy);
                match self.run_query(sql, strategy, stream) {
                    Ok(outcome) => Response::Rows(outcome),
                    Err(e) => error_response(e),
                }
            }
            Request::Prepare { sql, strategy } => {
                let strategy = strategy.unwrap_or(self.strategy);
                match self.prepare(sql, strategy) {
                    Ok(statement) => Response::Prepared { statement },
                    Err(e) => error_response(e),
                }
            }
            Request::Execute { statement } => match self.run_execute(*statement, stream) {
                Ok(outcome) => Response::Rows(outcome),
                Err(e) => error_response(e),
            },
            Request::CloseStatement { statement } => {
                if self.statements.remove(statement).is_some() {
                    Response::Ok
                } else {
                    error_response(ServeError::UnknownStatement(*statement))
                }
            }
            Request::Script { sql } => match self.run_script(sql) {
                Ok(()) => Response::Ok,
                Err(e) => error_response(e),
            },
            Request::Stats => Response::Stats(self.stats_json()),
            Request::TraceRecent { limit } => {
                let limit = limit.map_or(64, |n| n.min(1024)) as usize;
                Response::Traces(flight_recorder().to_json(limit))
            }
            Request::TraceGet { query_id } => match flight_recorder().get(*query_id) {
                Some(trace) => Response::Traces(trace.to_json()),
                None => Response::error(
                    ErrorCode::Protocol,
                    format!("no trace recorded for query id {query_id}"),
                ),
            },
        }
    }

    fn admit(&self) -> Result<Permit, ServeError> {
        self.shared.admission.try_admit().ok_or_else(|| {
            let stats = self.shared.admission.stats();
            ServeError::Busy(format!(
                "{} queries in flight (max {}), queue wait exceeded; retry later",
                stats.in_flight, stats.max_concurrent
            ))
        })
    }

    /// Run `f` (plan/execute work) with the disconnect watchdog armed on
    /// `token`. Restores the socket to blocking reads afterwards.
    fn with_watch<T>(
        &self,
        stream: &TcpStream,
        token: &CancellationToken,
        f: impl FnOnce() -> Result<T, ServeError>,
    ) -> Result<T, ServeError> {
        {
            let mut state = self.watch.lock();
            *state = WatchState::Watching {
                token: token.clone(),
                gen: self.watch.next_gen.fetch_add(1, Ordering::Relaxed),
            };
        }
        self.watch.cond.notify_all();
        let result = f();
        {
            let mut state = self.watch.lock();
            if !matches!(&*state, WatchState::Closed) {
                *state = WatchState::Idle;
            }
            // Under the same lock as the watchdog's install: after this,
            // the session socket is guaranteed back to blocking reads.
            let _ = stream.set_read_timeout(None);
        }
        result
    }

    fn run_query(
        &mut self,
        sql: &str,
        strategy: Strategy,
        stream: &TcpStream,
    ) -> Result<QueryOutcome, ServeError> {
        let started = Instant::now();
        let start_unix_ms = unix_ms();
        let _permit = self.admit()?;
        let token = CancellationToken::new();
        let trace = TraceContext::new();
        let mut options = self.options.clone();
        options.cancellation = Some(token.clone());
        options.trace = Some(trace.clone());
        let shared = &self.shared;
        // Cache builds run under server-level options (plus this query's
        // cancellation token) so the shared entry doesn't depend on which
        // session happened to build it; `options` governs execution only.
        let build_options = shared.build_options(Some(&token));
        let result = self.with_watch(stream, &token, || {
            // Installed here (not just via options.trace) so cache-build
            // spans — parse, rewrite, plan, optimize — are captured too.
            let _trace = trace.install();
            let (stmt, cached) = shared.cache.get_or_build(
                &shared.db,
                &shared.sigma,
                sql,
                strategy,
                &build_options,
            )?;
            let rows = shared
                .db
                .execute_plan_with(&stmt.plan, &options)
                .map_err(ServeError::Engine)?;
            Ok((stmt, rows, cached))
        });
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.finish_query(
            sql,
            strategy,
            &trace,
            start_unix_ms,
            elapsed_us,
            options.threads,
            &result,
        );
        let (_stmt, rows, cached) = result?;
        Ok(QueryOutcome {
            rows,
            cached,
            elapsed_us,
        })
    }

    /// Close out a finished (or failed) query: global counters, per-phase
    /// histograms, the flight-recorder entry, and the slow-query log.
    #[allow(clippy::too_many_arguments)]
    fn finish_query(
        &self,
        sql: &str,
        strategy: Strategy,
        trace: &TraceContext,
        start_unix_ms: u64,
        elapsed_us: u64,
        threads: usize,
        result: &Result<(Arc<CachedStatement>, Rows, bool), ServeError>,
    ) {
        let spans = trace.take_records();
        record_query(elapsed_us);
        let registry = conquer_obs::registry();
        for (name, wall) in conquer_obs::phase_totals(&spans) {
            registry
                .histogram(&format!("serve.phase.{name}.us"))
                .record(wall.as_micros() as u64);
        }
        let (status, error, cached, rows_out, rows_in, est_rows, trip) = match result {
            Ok((stmt, rows, cached)) => (
                "ok",
                None,
                *cached,
                rows.rows.len() as u64,
                stmt.base_rows,
                stmt.est_rows,
                None,
            ),
            Err(e) => (
                e.code().label(),
                Some(e.to_string()),
                false,
                0,
                0,
                None,
                trip_snapshot(e),
            ),
        };
        let worker_spans = spans.iter().filter(|s| s.name == "worker").count() as u64;
        let recorded = flight_recorder().record(QueryTrace {
            query_id: trace.id().value(),
            session: self.id,
            sql_hash: conquer_obs::sql_hash(sql),
            sql: conquer_obs::sql_snippet(sql),
            strategy: strategy.label(),
            status,
            error,
            cached,
            elapsed_us,
            rows_out,
            rows_in,
            est_rows,
            threads,
            worker_spans,
            start_unix_ms,
            trip,
            spans,
        });
        if status != "ok" {
            registry.counter("serve.queries.error").inc();
        }
        let threshold = self.slow_query_us;
        if threshold > 0 && (elapsed_us >= threshold || status != "ok") {
            registry.counter("serve.slow_query.logged").inc();
            conquer_obs::log_slow_query(&recorded, threshold);
        }
    }

    fn prepare(&mut self, sql: &str, strategy: Strategy) -> Result<u64, ServeError> {
        // Preparation plans (and for rewritings, materializes CTEs), so it
        // goes through admission like any other heavy work. The build runs
        // under server-level options: the entry is shared across sessions.
        let _permit = self.admit()?;
        let (stmt, _cached) = self.shared.cache.get_or_build(
            &self.shared.db,
            &self.shared.sigma,
            sql,
            strategy,
            &self.shared.build_options(None),
        )?;
        let id = self.next_statement;
        self.next_statement += 1;
        self.statements.insert(id, stmt);
        Ok(id)
    }

    fn run_execute(
        &mut self,
        statement_id: u64,
        stream: &TcpStream,
    ) -> Result<QueryOutcome, ServeError> {
        let bound = self
            .statements
            .get(&statement_id)
            .cloned()
            .ok_or(ServeError::UnknownStatement(statement_id))?;
        let started = Instant::now();
        let start_unix_ms = unix_ms();
        let _permit = self.admit()?;
        let token = CancellationToken::new();
        let trace = TraceContext::new();
        let mut options = self.options.clone();
        options.cancellation = Some(token.clone());
        options.trace = Some(trace.clone());
        let shared = &self.shared;
        let build_options = shared.build_options(Some(&token));
        let result = self.with_watch(stream, &token, || {
            let _trace = trace.install();
            // A catalog or statistics change since `prepare` makes the
            // bound plan stale: re-resolve through the cache so stale
            // plans are never served.
            let (stmt, cached) = if bound.epoch == shared.db.catalog_epoch()
                && bound.stats_epoch == shared.db.stats_epoch()
            {
                (Arc::clone(&bound), true)
            } else {
                shared.cache.get_or_build(
                    &shared.db,
                    &shared.sigma,
                    &bound.sql,
                    bound.strategy,
                    &build_options,
                )?
            };
            let rows = shared
                .db
                .execute_plan_with(&stmt.plan, &options)
                .map_err(ServeError::Engine)?;
            Ok((stmt, rows, cached))
        });
        let elapsed_us = started.elapsed().as_micros() as u64;
        self.finish_query(
            &bound.sql,
            bound.strategy,
            &trace,
            start_unix_ms,
            elapsed_us,
            options.threads,
            &result,
        );
        let (stmt, rows, cached) = result?;
        // Refresh the binding so the next `execute` hits the epoch check.
        self.statements.insert(statement_id, stmt);
        Ok(QueryOutcome {
            rows,
            cached,
            elapsed_us,
        })
    }

    fn run_script(&mut self, sql: &str) -> Result<(), ServeError> {
        let _permit = self.admit()?;
        self.shared.db.run_script(sql).map_err(ServeError::Engine)?;
        Ok(())
    }

    fn set_option(&mut self, name: &str, value: &Json) -> Result<(), ServeError> {
        fn uint(value: &Json) -> Option<u64> {
            match value {
                Json::UInt(v) => Some(*v),
                Json::Int(v) if *v >= 0 => Some(*v as u64),
                _ => None,
            }
        }
        let bad = |what: &str| {
            ServeError::Protocol(format!("`set {name}` expects {what}, got {value:?}"))
        };
        match name {
            "threads" => {
                let v = uint(value)
                    .filter(|v| (1..=256).contains(v))
                    .ok_or_else(|| bad("an integer in 1..=256"))?;
                self.options.threads = v as usize;
            }
            "timeout_ms" => {
                let v = uint(value).ok_or_else(|| bad("a non-negative integer (0 clears)"))?;
                self.options.limits.timeout = (v > 0).then(|| Duration::from_millis(v));
            }
            "mem_limit" => {
                let v = uint(value).ok_or_else(|| bad("a byte count (0 clears)"))?;
                self.options.limits.max_memory_bytes = (v > 0).then_some(v);
            }
            "max_rows" => {
                let v = uint(value).ok_or_else(|| bad("a row count (0 clears)"))?;
                self.options.limits.max_rows = (v > 0).then_some(v);
            }
            "strategy" => {
                let Json::Str(s) = value else {
                    return Err(bad("one of original|rewritten|annotated"));
                };
                self.strategy =
                    Strategy::parse(s).ok_or_else(|| bad("one of original|rewritten|annotated"))?;
            }
            "slow_query_us" => {
                let v = uint(value).ok_or_else(|| bad("a microsecond threshold (0 disables)"))?;
                self.slow_query_us = v;
            }
            _ => {
                return Err(ServeError::Protocol(format!(
                    "unknown session option `{name}` (have threads, timeout_ms, mem_limit, \
                     max_rows, strategy, slow_query_us)"
                )))
            }
        }
        Ok(())
    }

    fn stats_json(&self) -> Json {
        let cache = self.shared.cache.stats();
        let admission = self.shared.admission.stats();
        Json::obj([
            (
                "server",
                Json::obj([
                    ("version", Json::from(SERVER_VERSION)),
                    (
                        "active_sessions",
                        Json::UInt(self.shared.active_sessions() as u64),
                    ),
                    ("max_sessions", Json::UInt(self.shared.max_sessions as u64)),
                    ("catalog_epoch", Json::UInt(self.shared.db.catalog_epoch())),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("entries", Json::UInt(cache.entries as u64)),
                    ("capacity", Json::UInt(cache.capacity as u64)),
                    ("hits", Json::UInt(cache.hits)),
                    ("misses", Json::UInt(cache.misses)),
                    ("invalidations", Json::UInt(cache.invalidations)),
                    ("evictions", Json::UInt(cache.evictions)),
                    ("hit_rate", Json::Float(cache.hit_rate())),
                ]),
            ),
            (
                "admission",
                Json::obj([
                    ("in_flight", Json::UInt(admission.in_flight as u64)),
                    ("queue_depth", Json::UInt(admission.queue_depth as u64)),
                    (
                        "max_concurrent",
                        Json::UInt(admission.max_concurrent as u64),
                    ),
                    ("admitted", Json::UInt(admission.admitted)),
                    ("rejected", Json::UInt(admission.rejected)),
                ]),
            ),
            (
                "session",
                Json::obj([
                    ("id", Json::UInt(self.id)),
                    ("strategy", Json::from(self.strategy.label())),
                    ("threads", Json::UInt(self.options.threads as u64)),
                    (
                        "prepared_statements",
                        Json::UInt(self.statements.len() as u64),
                    ),
                ]),
            ),
            (
                "storage",
                match self.shared.db.storage_status() {
                    Some(status) => Json::obj([
                        ("durable", Json::Bool(true)),
                        ("generation", Json::UInt(status.generation)),
                        ("last_seq", Json::UInt(status.last_seq)),
                        ("wal_bytes", Json::UInt(status.wal_bytes)),
                        ("wal_unsynced_bytes", Json::UInt(status.wal_unsynced_bytes)),
                        ("segments", Json::UInt(status.segments)),
                    ]),
                    None => Json::obj([("durable", Json::Bool(false))]),
                },
            ),
            (
                "indexes",
                Json::arr(
                    self.shared
                        .db
                        .index_status()
                        .into_iter()
                        .map(|(table, cols, built)| {
                            Json::obj([
                                ("table", Json::from(table.as_str())),
                                ("columns", Json::from(cols.join(",").as_str())),
                                ("built", Json::Bool(built)),
                            ])
                        }),
                ),
            ),
            ("obs", conquer_obs::registry().snapshot_json()),
        ])
    }
}

fn error_response(e: ServeError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

fn record_query(elapsed_us: u64) {
    let registry = conquer_obs::registry();
    registry.counter("serve.queries").inc();
    registry.histogram("serve.query.us").record(elapsed_us);
}

/// Wall-clock milliseconds since the unix epoch (0 if the clock is before
/// the epoch, which only a badly skewed clock can produce).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Governor-trip details for the flight recorder, when the failure was a
/// resource-limit trip (directly from execution, or surfaced through a
/// rewrite-time materialization).
fn trip_snapshot(e: &ServeError) -> Option<TripSnapshot> {
    let engine_error = match e {
        ServeError::Engine(e) => e,
        ServeError::Rewrite(RewriteError::Engine(e)) => e,
        _ => return None,
    };
    let (kind, trip) = match engine_error {
        EngineError::Timeout(t) => ("timeout", t),
        EngineError::MemoryExceeded(t) => ("memory", t),
        EngineError::RowLimitExceeded(t) => ("rows", t),
        EngineError::Cancelled(t) => ("cancelled", t),
        _ => return None,
    };
    Some(TripSnapshot {
        kind,
        operator: trip.operator.to_string(),
        elapsed_ms: trip.elapsed_ms,
        rows: trip.rows,
        mem_bytes: trip.mem_bytes,
    })
}

/// [`read_frame`] with a retry on spurious `WouldBlock`/`TimedOut` — a
/// safety net for the (lock-ordered, see module docs) watchdog timeout
/// races; never expected to loop in practice.
fn read_request(stream: &mut TcpStream) -> io::Result<Option<Json>> {
    loop {
        match read_frame(stream) {
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            other => return other,
        }
    }
}
