//! The server proper: listener, accept loop, session registry, shutdown.
//!
//! One [`Shared`] struct carries everything sessions touch — the
//! `Arc<Database>` (read-mostly: queries never lock, scripts copy-on-write
//! behind the catalog mutex, see DESIGN.md §4), the constraint set, the
//! statement cache, and the admission semaphore. Each accepted connection
//! gets a dedicated session thread; the count is capped (`max_sessions`)
//! and connections past the cap are greeted with a `busy` error frame and
//! closed, so the accept loop itself can never pile up unbounded threads.
//!
//! Shutdown (either [`ServerHandle::shutdown`] or a client `shutdown`
//! request) sets a flag, wakes the accept loop with a loopback connect,
//! half-closes every live session socket (sessions observe EOF and exit),
//! and waits for the session count to drain.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use conquer_core::ConstraintSet;
use conquer_engine::{CancellationToken, Database, ExecOptions};

use crate::admission::Admission;
use crate::cache::StatementCache;
use crate::protocol::{write_frame, ErrorCode, Response};
use crate::session::run_session;

/// Tunables for [`serve`]. The defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Connection cap; further connects get a `busy` greeting and a close.
    pub max_sessions: usize,
    /// Queries allowed to run at once (admission semaphore width).
    pub max_concurrent: usize,
    /// How long a query may queue for admission before `busy`.
    pub queue_wait: Duration,
    /// Rewrite/plan cache capacity (entries).
    pub cache_capacity: usize,
    /// Options cached statements are *built* under (plan time, including
    /// CTE materialization). Cache entries are shared across sessions, so
    /// builds run under this fixed server-level policy rather than the
    /// requesting session's `SET` limits — otherwise a plan materialized
    /// under one session's (lack of) limits would be served to sessions
    /// whose limits differ. Per-session options still govern execution.
    pub build_options: ExecOptions,
    /// Bind address for the HTTP metrics endpoint (`/metrics`,
    /// `/metrics.json`, `/traces`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Default slow-query threshold in microseconds: queries slower than
    /// this — plus every tripped or errored query — are written as JSON
    /// lines to the slow-query sink. `0` disables the log. Sessions can
    /// override their own threshold with `SET slow_query_us`.
    pub slow_query_us: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            max_concurrent: 4,
            queue_wait: Duration::from_millis(500),
            cache_capacity: 256,
            build_options: ExecOptions::default(),
            metrics_addr: None,
            slow_query_us: 0,
        }
    }
}

/// State shared by the accept loop and every session thread.
pub struct Shared {
    pub db: Arc<Database>,
    pub sigma: ConstraintSet,
    pub cache: StatementCache,
    pub admission: Arc<Admission>,
    pub max_sessions: usize,
    /// Server-level policy for cache builds (see
    /// [`ServerConfig::build_options`]).
    build_options: ExecOptions,
    /// Server-default slow-query threshold, copied into new sessions.
    pub slow_query_us: u64,
    addr: SocketAddr,
    /// Where the HTTP metrics endpoint is bound, when enabled.
    metrics_addr: Option<SocketAddr>,
    active: AtomicUsize,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    /// `try_clone`s of live session sockets, for forced close on shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl Shared {
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Options for building a cache entry on behalf of a query: the
    /// server-level build policy, plus the requesting query's cancellation
    /// token when it has one (a disconnect still cancels the build; a
    /// token never shapes the plan, so sharing the entry stays sound).
    pub fn build_options(&self, cancellation: Option<&CancellationToken>) -> ExecOptions {
        let mut options = self.build_options.clone();
        options.cancellation = cancellation.cloned();
        options
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Initiate shutdown from any thread: flag, wake the accept loop, and
    /// half-close every live session socket so blocked reads see EOF.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return; // already underway
        }
        // Wake the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.addr);
        // Same for the metrics accept loop, when one is running.
        if let Some(metrics_addr) = self.metrics_addr {
            let _ = TcpStream::connect(metrics_addr);
        }
        for (_, conn) in self.lock_conns().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where the HTTP metrics endpoint is listening, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// The shared state, for in-process inspection (tests, the binary).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Ask the server to stop: no new connections, live sockets closed.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until the accept loop exits and every session drains. Returns
    /// without forcing shutdown first — callers wanting to *stop* the
    /// server call [`shutdown`](ServerHandle::shutdown) (or a client sends
    /// the `shutdown` request); this is what the binary parks on.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
        // The accept loop only exits on shutdown; drain the sessions.
        let mut spins = 0u32;
        while self.shared.active_sessions() > 0 && spins < 4000 {
            std::thread::sleep(Duration::from_millis(5));
            spins += 1;
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
        let mut spins = 0u32;
        while self.shared.active_sessions() > 0 && spins < 1000 {
            std::thread::sleep(Duration::from_millis(5));
            spins += 1;
        }
    }
}

/// Bind and start serving `db` under constraints `sigma`. Returns once the
/// listener is bound and accepting; sessions run on their own threads.
pub fn serve(
    db: Arc<Database>,
    sigma: ConstraintSet,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics_listener = match &config.metrics_addr {
        Some(metrics_addr) => Some(TcpListener::bind(metrics_addr)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    // Declare key-column indexes up front: the columns the rewritings
    // self-join on. Declarations only — the first query against each table
    // triggers the lazy build, so startup (and crash recovery before it)
    // stays fast.
    conquer_core::declare_key_indexes(&db, &sigma);
    let shared = Arc::new(Shared {
        db,
        sigma,
        cache: StatementCache::new(config.cache_capacity),
        admission: Admission::new(config.max_concurrent, config.queue_wait),
        max_sessions: config.max_sessions.max(1),
        build_options: config.build_options,
        slow_query_us: config.slow_query_us,
        addr,
        metrics_addr,
        active: AtomicUsize::new(0),
        next_session: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("conquer-accept".to_string())
            .spawn(move || accept_loop(listener, shared))?
    };
    let metrics = match metrics_listener {
        Some(listener) => {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("conquer-metrics".to_string())
                    .spawn(move || crate::metrics_http::metrics_loop(listener, shared))?,
            )
        }
        None => None,
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        metrics,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.is_shutting_down() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        if shared.active_sessions() >= shared.max_sessions {
            reject_session(stream);
            continue;
        }
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        shared.active.fetch_add(1, Ordering::AcqRel);
        if let Ok(clone) = stream.try_clone() {
            shared.lock_conns().insert(id, clone);
        }
        conquer_obs::registry()
            .counter("serve.sessions.opened")
            .inc();
        let session_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name(format!("conquer-session-{id}"))
            .spawn(move || {
                let wants_shutdown = run_session(Arc::clone(&session_shared), stream, id);
                session_shared.lock_conns().remove(&id);
                session_shared.active.fetch_sub(1, Ordering::AcqRel);
                conquer_obs::registry()
                    .counter("serve.sessions.closed")
                    .inc();
                if wants_shutdown {
                    session_shared.request_shutdown();
                }
            });
        if spawned.is_err() {
            // Could not spawn a thread: undo the bookkeeping, drop the conn.
            shared.lock_conns().remove(&id);
            shared.active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Greet an over-capacity connection with a structured `busy` error so the
/// client can distinguish "server full" from a network failure.
fn reject_session(mut stream: TcpStream) {
    conquer_obs::registry()
        .counter("serve.sessions.rejected")
        .inc();
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "session limit reached; retry later".to_string(),
    };
    let _ = write_frame(&mut stream, &resp.to_json());
}
