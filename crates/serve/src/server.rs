//! The server proper: listener, accept loop, serving-mode wiring, shutdown.
//!
//! One [`Shared`] struct carries everything request handling touches — the
//! `Arc<Database>` (read-mostly: queries never lock, scripts copy-on-write
//! behind the catalog mutex, see DESIGN.md §4), the constraint set, the
//! statement cache, and the admission semaphore.
//!
//! Two serving modes share it:
//!
//! * **Event loop** (default, `io_threads > 0`): accepted connections are
//!   handed round-robin to a fixed pool of IO drivers that multiplex them
//!   over nonblocking sockets, with heavy work on a fixed pool of query
//!   workers ([`crate::event`]). Total thread count is
//!   `io_threads + workers + 2` (accept + metrics), independent of
//!   connection count.
//! * **Thread-per-connection fallback** (`io_threads == 0`): the PR-4
//!   design — one session thread plus a disconnect watchdog per
//!   connection ([`crate::session`]) — kept for one release as the
//!   differential oracle the soak test compares wire output against.
//!
//! Either way the connection count is capped (`max_sessions`) and
//! connections past the cap are greeted with a `busy` error frame (under a
//! write timeout — a never-reading peer must not wedge the accept loop)
//! and closed.
//!
//! Shutdown (either [`ServerHandle::shutdown`] or a client `shutdown`
//! request) sets a flag, wakes the accept loop with a loopback connect,
//! closes the run queue and wakes every driver (event mode) or half-closes
//! every live session socket (fallback), then waits for the live-session
//! count to drain — a condvar signaled by the last connection teardown,
//! not a bounded sleep-spin, so [`ServerHandle::wait`] returning means the
//! server is actually quiescent.

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use conquer_core::ConstraintSet;
use conquer_engine::{CancellationToken, Database, ExecOptions};

use crate::admission::Admission;
use crate::cache::StatementCache;
use crate::event::{driver_loop, worker_loop, DriverShared, EventCore, Inbox, RunQueue, Waker};
use crate::protocol::{write_frame, ErrorCode, Response};
use crate::session::run_session;

/// Write timeout for accept-path greetings (the over-capacity `busy` frame
/// and the fallback mode's `Hello`): a peer that connects and never reads
/// gets its socket dropped instead of wedging the accept path once the
/// kernel buffer fills.
const GREETING_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// Tunables for [`serve`]. The defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Connection cap; further connects get a `busy` greeting and a close.
    pub max_sessions: usize,
    /// Queries allowed to run at once (admission semaphore width).
    pub max_concurrent: usize,
    /// How long a query may queue for admission before `busy`.
    pub queue_wait: Duration,
    /// Rewrite/plan cache capacity (entries).
    pub cache_capacity: usize,
    /// Options cached statements are *built* under (plan time, including
    /// CTE materialization). Cache entries are shared across sessions, so
    /// builds run under this fixed server-level policy rather than the
    /// requesting session's `SET` limits — otherwise a plan materialized
    /// under one session's (lack of) limits would be served to sessions
    /// whose limits differ. Per-session options still govern execution.
    pub build_options: ExecOptions,
    /// Bind address for the HTTP metrics endpoint (`/metrics`,
    /// `/metrics.json`, `/traces`); `None` disables it.
    pub metrics_addr: Option<String>,
    /// Default slow-query threshold in microseconds: queries slower than
    /// this — plus every tripped or errored query — are written as JSON
    /// lines to the slow-query sink. `0` disables the log. Sessions can
    /// override their own threshold with `SET slow_query_us`.
    pub slow_query_us: u64,
    /// IO driver threads multiplexing the connections. `0` selects the
    /// legacy thread-per-connection fallback (one session thread + one
    /// watchdog per connection), kept for one release as a differential
    /// oracle.
    pub io_threads: usize,
    /// Query worker threads executing admission-gated requests in event
    /// mode. `0` means "match `max_concurrent`" — more would idle behind
    /// the admission semaphore, fewer would leave admitted slots unused.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 64,
            max_concurrent: 4,
            queue_wait: Duration::from_millis(500),
            cache_capacity: 256,
            build_options: ExecOptions::default(),
            metrics_addr: None,
            slow_query_us: 0,
            io_threads: 2,
            workers: 0,
        }
    }
}

/// State shared by the accept loop and every connection, in either mode.
pub struct Shared {
    pub db: Arc<Database>,
    pub sigma: ConstraintSet,
    pub cache: StatementCache,
    pub admission: Arc<Admission>,
    pub max_sessions: usize,
    /// Server-level policy for cache builds (see
    /// [`ServerConfig::build_options`]).
    build_options: ExecOptions,
    /// Server-default slow-query threshold, copied into new sessions.
    pub slow_query_us: u64,
    addr: SocketAddr,
    /// Where the HTTP metrics endpoint is bound, when enabled.
    metrics_addr: Option<SocketAddr>,
    /// Live-session count, authoritative copy under the mutex so the drain
    /// condvar can't miss the last decrement; `active` mirrors it for
    /// lock-free reads on the stats path.
    sessions: Mutex<usize>,
    sessions_cond: Condvar,
    active: AtomicUsize,
    next_session: AtomicU64,
    shutdown: AtomicBool,
    /// `try_clone`s of live session sockets, for forced close on shutdown.
    /// Fallback mode only: event-mode drivers close their own sockets when
    /// they observe the shutdown flag, which also halves the fd budget.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Fallback-mode session thread handles. The condvar drain proves every
    /// session *signalled* teardown; joining these proves the threads are
    /// actually gone, which is what lets `wait()` promise zero server
    /// threads. The accept loop reaps finished handles opportunistically so
    /// the vector stays proportional to live sessions.
    session_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Event-mode plumbing (run queue + per-driver inbox/waker), installed
    /// once by [`serve`] when `io_threads > 0`.
    event: OnceLock<Arc<EventCore>>,
}

impl Shared {
    pub fn active_sessions(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// Options for building a cache entry on behalf of a query: the
    /// server-level build policy, plus the requesting query's cancellation
    /// token when it has one (a disconnect still cancels the build; a
    /// token never shapes the plan, so sharing the entry stays sound).
    pub fn build_options(&self, cancellation: Option<&CancellationToken>) -> ExecOptions {
        let mut options = self.build_options.clone();
        options.cancellation = cancellation.cloned();
        options
    }

    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests currently waiting in the event loop's run queue for a free
    /// query worker (0 in fallback mode, which has no run queue).
    pub fn run_queue_depth(&self) -> usize {
        self.event.get().map_or(0, |core| core.run_queue.depth())
    }

    fn lock_conns(&self) -> std::sync::MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Register a fallback session thread, reaping any that have already
    /// finished (joins happen outside the lock and are instantaneous for a
    /// finished thread).
    fn track_session_thread(&self, handle: JoinHandle<()>) {
        let finished = {
            let mut threads = self
                .session_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let mut finished = Vec::new();
            let mut i = 0;
            while i < threads.len() {
                if threads[i].is_finished() {
                    finished.push(threads.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            threads.push(handle);
            finished
        };
        for thread in finished {
            let _ = thread.join();
        }
    }

    /// Join every tracked session thread. Callers must have completed the
    /// condvar drain first, so each join only waits out a thread's final
    /// few instructions (the teardown signal fires from inside the thread).
    fn join_session_threads(&self) {
        let threads = std::mem::take(
            &mut *self
                .session_threads
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for thread in threads {
            let _ = thread.join();
        }
    }

    /// Account one accepted connection (either mode).
    pub(crate) fn session_opened(&self) {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        *sessions += 1;
        drop(sessions);
        self.active.fetch_add(1, Ordering::AcqRel);
        conquer_obs::registry()
            .counter("serve.sessions.opened")
            .inc();
    }

    /// Account one connection teardown and signal the drain condvar — this
    /// notify is what makes [`ServerHandle::wait`] returning mean actual
    /// quiescence rather than "slept long enough".
    pub(crate) fn session_closed(&self) {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        *sessions = sessions.saturating_sub(1);
        drop(sessions);
        self.active.fetch_sub(1, Ordering::AcqRel);
        conquer_obs::registry()
            .counter("serve.sessions.closed")
            .inc();
        self.sessions_cond.notify_all();
    }

    /// Block until every live session has torn down, or `deadline` passes
    /// (`None` waits indefinitely). Returns whether the drain completed.
    fn drain_sessions(&self, deadline: Option<Instant>) -> bool {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        while *sessions > 0 {
            match deadline {
                None => {
                    sessions = self
                        .sessions_cond
                        .wait(sessions)
                        .unwrap_or_else(|e| e.into_inner());
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return false;
                    }
                    let (guard, _) = self
                        .sessions_cond
                        .wait_timeout(sessions, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    sessions = guard;
                }
            }
        }
        true
    }

    /// Initiate shutdown from any thread: flag, wake the accept loop, stop
    /// the event loop's queue/drivers, and half-close fallback sockets so
    /// blocked session reads see EOF.
    pub fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return; // already underway
        }
        // Wake the accept loop (it re-checks the flag per connection).
        let _ = TcpStream::connect(self.addr);
        // Same for the metrics accept loop, when one is running.
        if let Some(metrics_addr) = self.metrics_addr {
            let _ = TcpStream::connect(metrics_addr);
        }
        if let Some(core) = self.event.get() {
            core.run_queue.close();
            for driver in &core.drivers {
                driver.waker.wake();
            }
        }
        for (_, conn) in self.lock_conns().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    metrics: Option<JoinHandle<()>>,
    drivers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Where the HTTP metrics endpoint is listening, when enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// The shared state, for in-process inspection (tests, the binary).
    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Ask the server to stop: no new connections, live sockets closed.
    pub fn shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Block until the accept loop exits, every session drains, and every
    /// pool thread is joined. Returns without forcing shutdown first —
    /// callers wanting to *stop* the server call
    /// [`shutdown`](ServerHandle::shutdown) (or a client sends the
    /// `shutdown` request); this is what the binary parks on. When this
    /// returns, the server is quiescent: zero live sessions and zero
    /// server threads.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
        // The accept loop only exits on shutdown; by now the drivers are
        // tearing connections down. Wait on the drain condvar (signaled by
        // the last teardown), then collect the pools.
        self.shared.drain_sessions(None);
        self.shared.join_session_threads();
        for driver in self.drivers.drain(..) {
            let _ = driver.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.request_shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
        // Generous but bounded: `Drop` must not hang forever on a wedged
        // session, but in-flight queries get cancelled at teardown and the
        // governor unwinds them within its check interval.
        let drained = self
            .shared
            .drain_sessions(Some(Instant::now() + Duration::from_secs(30)));
        if drained {
            self.shared.join_session_threads();
        }
        for driver in self.drivers.drain(..) {
            let _ = driver.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Bind and start serving `db` under constraints `sigma`. Returns once the
/// listener is bound and accepting.
pub fn serve(
    db: Arc<Database>,
    sigma: ConstraintSet,
    config: ServerConfig,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let metrics_listener = match &config.metrics_addr {
        Some(metrics_addr) => Some(TcpListener::bind(metrics_addr)?),
        None => None,
    };
    let metrics_addr = match &metrics_listener {
        Some(l) => Some(l.local_addr()?),
        None => None,
    };
    // Declare key-column indexes up front: the columns the rewritings
    // self-join on. Declarations only — the first query against each table
    // triggers the lazy build, so startup (and crash recovery before it)
    // stays fast.
    conquer_core::declare_key_indexes(&db, &sigma);
    let shared = Arc::new(Shared {
        db,
        sigma,
        cache: StatementCache::new(config.cache_capacity),
        admission: Admission::new(config.max_concurrent, config.queue_wait),
        max_sessions: config.max_sessions.max(1),
        build_options: config.build_options,
        slow_query_us: config.slow_query_us,
        addr,
        metrics_addr,
        sessions: Mutex::new(0),
        sessions_cond: Condvar::new(),
        active: AtomicUsize::new(0),
        next_session: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        session_threads: Mutex::new(Vec::new()),
        event: OnceLock::new(),
    });
    let mut drivers = Vec::new();
    let mut workers = Vec::new();
    if config.io_threads > 0 {
        let worker_count = if config.workers > 0 {
            config.workers
        } else {
            config.max_concurrent.max(1)
        };
        let run_queue = RunQueue::new();
        let mut driver_shared = Vec::new();
        for i in 0..config.io_threads {
            let inbox = Arc::new(Inbox::new());
            let waker = Arc::new(Waker::new());
            driver_shared.push(DriverShared {
                waker: Arc::clone(&waker),
                inbox: Arc::clone(&inbox),
            });
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&run_queue);
            drivers.push(
                std::thread::Builder::new()
                    .name(format!("conquer-io-{i}"))
                    .spawn(move || driver_loop(shared, queue, inbox, waker))?,
            );
        }
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            let queue = Arc::clone(&run_queue);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("conquer-worker-{i}"))
                    .spawn(move || worker_loop(shared, queue))?,
            );
        }
        let _ = shared.event.set(Arc::new(EventCore {
            run_queue,
            drivers: driver_shared,
        }));
    }
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("conquer-accept".to_string())
            .spawn(move || accept_loop(listener, shared))?
    };
    let metrics = match metrics_listener {
        Some(listener) => {
            let shared = Arc::clone(&shared);
            Some(
                std::thread::Builder::new()
                    .name("conquer-metrics".to_string())
                    .spawn(move || crate::metrics_http::metrics_loop(listener, shared))?,
            )
        }
        None => None,
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        metrics,
        drivers,
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    for conn in listener.incoming() {
        if shared.is_shutting_down() {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let _ = stream.set_nodelay(true);
        if shared.active_sessions() >= shared.max_sessions {
            reject_session(stream);
            continue;
        }
        let id = shared.next_session.fetch_add(1, Ordering::Relaxed);
        match shared.event.get() {
            Some(core) => {
                // Event mode: hand the socket to a driver round-robin. The
                // driver writes the Hello greeting from its nonblocking
                // flusher, so no write timeout is needed here.
                shared.session_opened();
                let driver = &core.drivers[id as usize % core.drivers.len()];
                match driver.inbox.push(stream, id) {
                    Ok(()) => driver.waker.wake(),
                    Err(stream) => {
                        // Driver already shut down (shutdown race): undo.
                        drop(stream);
                        shared.session_closed();
                    }
                }
            }
            None => spawn_session_thread(&shared, stream, id),
        }
    }
}

/// Fallback mode: one session thread per connection (plus its watchdog).
fn spawn_session_thread(shared: &Arc<Shared>, stream: TcpStream, id: u64) {
    shared.session_opened();
    if let Ok(clone) = stream.try_clone() {
        shared.lock_conns().insert(id, clone);
    }
    // The session thread writes the Hello greeting with a blocking write;
    // cap it so a connected-but-never-reading peer can't pin the thread
    // (the session restores untimed writes once the greeting is out).
    let _ = stream.set_write_timeout(Some(GREETING_WRITE_TIMEOUT));
    let session_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("conquer-session-{id}"))
        .spawn(move || {
            let wants_shutdown = run_session(Arc::clone(&session_shared), stream, id);
            session_shared.lock_conns().remove(&id);
            session_shared.session_closed();
            if wants_shutdown {
                session_shared.request_shutdown();
            }
        });
    match spawned {
        Ok(handle) => shared.track_session_thread(handle),
        Err(_) => {
            // Could not spawn a thread: undo the bookkeeping, drop the conn.
            shared.lock_conns().remove(&id);
            shared.session_closed();
        }
    }
}

/// Greet an over-capacity connection with a structured `busy` error so the
/// client can distinguish "server full" from a network failure. The write
/// runs under a timeout: this is the accept thread, and a peer that never
/// reads must not be able to wedge it.
fn reject_session(mut stream: TcpStream) {
    conquer_obs::registry()
        .counter("serve.sessions.rejected")
        .inc();
    let _ = stream.set_write_timeout(Some(GREETING_WRITE_TIMEOUT));
    let resp = Response::Error {
        code: ErrorCode::Busy,
        message: "session limit reached; retry later".to_string(),
    };
    let _ = write_frame(&mut stream, &resp.to_json());
}
