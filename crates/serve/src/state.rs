//! The per-connection session state machine, shared by both serving modes.
//!
//! PR 4's server kept session state (options, prepared statements, the
//! current strategy) as stack state of a dedicated connection thread. The
//! event loop multiplexes many connections over a fixed pool of threads,
//! so that state now lives in an explicit [`SessionState`] struct owned by
//! the connection, and the request logic is split by *where it may run*:
//!
//! * [`handle_control`] — cheap, never-blocking requests (`set`, `stats`,
//!   `ping`, traces, `close_statement`) answered inline wherever the
//!   request was parsed: on the IO driver in event-loop mode, on the
//!   session thread in thread-per-connection mode. `stats`/`ping` keep
//!   their admission bypass, so a loaded server stays observable.
//! * [`run_heavy`] — admission-gated work (`query`, `prepare`, `execute`,
//!   `script`) that parses/plans/executes and may block for the queue-wait
//!   deadline. The event loop runs it on a query worker; the fallback runs
//!   it on the session thread under the disconnect watchdog.
//!
//! Both modes call the *same* functions with the same inputs (a
//! [`Shared`], a `SessionState`, and a pre-created per-query
//! [`CancellationToken`] the caller arms for disconnect cancellation), so
//! the wire protocol, `SET` semantics, statement-cache epoch checks,
//! slow-query logging, and flight-recorder entries are identical bit for
//! bit across modes — the property the soak test's differential oracle
//! (`io_threads: 0`) checks over real sockets.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime};

use conquer_core::RewriteError;
use conquer_engine::{CancellationToken, EngineError, ExecOptions, Rows};
use conquer_obs::{flight_recorder, Json, QueryTrace, TraceContext, TripSnapshot};

use crate::cache::CachedStatement;
use crate::error::ServeError;
use crate::protocol::{ErrorCode, QueryOutcome, Request, Response, Strategy};
use crate::server::Shared;

/// Wire-protocol version reported in the `Hello` frame.
pub const SERVER_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Everything a connection remembers between requests. One per
/// connection, mutated only by whichever thread is currently processing
/// that connection's single in-flight request (the protocol is strictly
/// request/response, so there is never more than one).
pub(crate) struct SessionState {
    pub id: u64,
    pub options: ExecOptions,
    pub strategy: Strategy,
    pub statements: HashMap<u64, Arc<CachedStatement>>,
    pub next_statement: u64,
    /// Slow-query log threshold in microseconds (0 = disabled); starts at
    /// the server default, overridable with `SET slow_query_us`.
    pub slow_query_us: u64,
}

impl SessionState {
    pub fn new(shared: &Shared, id: u64) -> SessionState {
        SessionState {
            id,
            options: ExecOptions::default(),
            strategy: Strategy::default(),
            statements: HashMap::new(),
            next_statement: 1,
            slow_query_us: shared.slow_query_us,
        }
    }
}

/// The admission-gated request class, with its inputs resolved against the
/// session (strategy defaults applied) so it can travel to a query worker
/// as plain data.
pub(crate) enum HeavyOp {
    Query { sql: String, strategy: Strategy },
    Prepare { sql: String, strategy: Strategy },
    Execute { statement: u64 },
    Script { sql: String },
}

/// Split a parsed request into the class that decides where it runs.
/// `Heavy` ops go through admission (on a worker in event-loop mode);
/// everything else is answered inline.
pub(crate) enum RequestClass {
    Heavy(HeavyOp),
    Control(Request),
}

pub(crate) fn classify(request: Request, state: &SessionState) -> RequestClass {
    match request {
        Request::Query { sql, strategy } => RequestClass::Heavy(HeavyOp::Query {
            sql,
            strategy: strategy.unwrap_or(state.strategy),
        }),
        Request::Prepare { sql, strategy } => RequestClass::Heavy(HeavyOp::Prepare {
            sql,
            strategy: strategy.unwrap_or(state.strategy),
        }),
        Request::Execute { statement } => RequestClass::Heavy(HeavyOp::Execute { statement }),
        Request::Script { sql } => RequestClass::Heavy(HeavyOp::Script { sql }),
        other => RequestClass::Control(other),
    }
}

/// Answer a control request inline. Callers handle the connection-level
/// consequences of `Quit`/`Shutdown` (close after flush, server shutdown)
/// themselves; this only produces the response frame.
pub(crate) fn handle_control(shared: &Shared, state: &mut SessionState, request: &Request) -> Response {
    match request {
        Request::Ping | Request::Quit | Request::Shutdown => Response::Ok,
        Request::Set { name, value } => match set_option(state, name, value) {
            Ok(()) => Response::Ok,
            Err(e) => error_response(&e),
        },
        Request::CloseStatement { statement } => {
            if state.statements.remove(statement).is_some() {
                Response::Ok
            } else {
                error_response(&ServeError::UnknownStatement(*statement))
            }
        }
        Request::Stats => Response::Stats(stats_json(shared, state)),
        Request::TraceRecent { limit } => {
            let limit = limit.map_or(64, |n| n.min(1024)) as usize;
            Response::Traces(flight_recorder().to_json(limit))
        }
        Request::TraceGet { query_id } => match flight_recorder().get(*query_id) {
            Some(trace) => Response::Traces(trace.to_json()),
            None => Response::error(
                ErrorCode::Protocol,
                format!("no trace recorded for query id {query_id}"),
            ),
        },
        // Heavy ops never reach here (classify routes them to run_heavy).
        Request::Query { .. }
        | Request::Prepare { .. }
        | Request::Execute { .. }
        | Request::Script { .. } => Response::error(
            ErrorCode::Protocol,
            "internal: heavy request on the control path".to_string(),
        ),
    }
}

/// Run one admission-gated request to completion and produce its response.
///
/// `token` is the query's cancellation token — the caller arms disconnect
/// detection on it (the event-loop driver holds it as the connection's
/// in-flight token; the fallback session arms the watchdog) before calling.
/// `queued_at` is when the request was dequeued for service; the admission
/// queue-wait deadline counts from there, so time spent waiting for a free
/// query worker counts against the deadline exactly like time spent
/// waiting on the semaphore.
pub(crate) fn run_heavy(
    shared: &Shared,
    state: &mut SessionState,
    op: &HeavyOp,
    token: &CancellationToken,
    queued_at: Instant,
) -> Response {
    match op {
        HeavyOp::Query { sql, strategy } => {
            match run_query(shared, state, sql, *strategy, token, queued_at) {
                Ok(outcome) => Response::Rows(outcome),
                Err(e) => error_response(&e),
            }
        }
        HeavyOp::Prepare { sql, strategy } => {
            match prepare(shared, state, sql, *strategy, queued_at) {
                Ok(statement) => Response::Prepared { statement },
                Err(e) => error_response(&e),
            }
        }
        HeavyOp::Execute { statement } => {
            match run_execute(shared, state, *statement, token, queued_at) {
                Ok(outcome) => Response::Rows(outcome),
                Err(e) => error_response(&e),
            }
        }
        HeavyOp::Script { sql } => match run_script(shared, sql, queued_at) {
            Ok(()) => Response::Ok,
            Err(e) => error_response(&e),
        },
    }
}

fn admit(shared: &Shared, entered: Instant) -> Result<crate::admission::Permit, ServeError> {
    shared.admission.try_admit_from(entered).ok_or_else(|| {
        let stats = shared.admission.stats();
        ServeError::Busy(format!(
            "{} queries in flight (max {}), queue wait exceeded; retry later",
            stats.in_flight, stats.max_concurrent
        ))
    })
}

fn run_query(
    shared: &Shared,
    state: &mut SessionState,
    sql: &str,
    strategy: Strategy,
    token: &CancellationToken,
    queued_at: Instant,
) -> Result<QueryOutcome, ServeError> {
    let start_unix_ms = unix_ms();
    let _permit = admit(shared, queued_at)?;
    let trace = TraceContext::new();
    let mut options = state.options.clone();
    options.cancellation = Some(token.clone());
    options.trace = Some(trace.clone());
    // Cache builds run under server-level options (plus this query's
    // cancellation token) so the shared entry doesn't depend on which
    // session happened to build it; `options` governs execution only.
    let build_options = shared.build_options(Some(token));
    let result = (|| {
        // Installed here (not just via options.trace) so cache-build
        // spans — parse, rewrite, plan, optimize — are captured too.
        let _trace = trace.install();
        let (stmt, cached) =
            shared
                .cache
                .get_or_build(&shared.db, &shared.sigma, sql, strategy, &build_options)?;
        let rows = shared
            .db
            .execute_plan_with(&stmt.plan, &options)
            .map_err(ServeError::Engine)?;
        Ok((stmt, rows, cached))
    })();
    let elapsed_us = queued_at.elapsed().as_micros() as u64;
    finish_query(
        state,
        sql,
        strategy,
        &trace,
        start_unix_ms,
        elapsed_us,
        options.threads,
        &result,
    );
    let (_stmt, rows, cached) = result?;
    Ok(QueryOutcome {
        rows,
        cached,
        elapsed_us,
    })
}

fn prepare(
    shared: &Shared,
    state: &mut SessionState,
    sql: &str,
    strategy: Strategy,
    queued_at: Instant,
) -> Result<u64, ServeError> {
    // Preparation plans (and for rewritings, materializes CTEs), so it
    // goes through admission like any other heavy work. The build runs
    // under server-level options: the entry is shared across sessions.
    let _permit = admit(shared, queued_at)?;
    let (stmt, _cached) = shared.cache.get_or_build(
        &shared.db,
        &shared.sigma,
        sql,
        strategy,
        &shared.build_options(None),
    )?;
    let id = state.next_statement;
    state.next_statement += 1;
    state.statements.insert(id, stmt);
    Ok(id)
}

fn run_execute(
    shared: &Shared,
    state: &mut SessionState,
    statement_id: u64,
    token: &CancellationToken,
    queued_at: Instant,
) -> Result<QueryOutcome, ServeError> {
    let bound = state
        .statements
        .get(&statement_id)
        .cloned()
        .ok_or(ServeError::UnknownStatement(statement_id))?;
    let start_unix_ms = unix_ms();
    let _permit = admit(shared, queued_at)?;
    let trace = TraceContext::new();
    let mut options = state.options.clone();
    options.cancellation = Some(token.clone());
    options.trace = Some(trace.clone());
    let build_options = shared.build_options(Some(token));
    let result = (|| {
        let _trace = trace.install();
        // A catalog or statistics change since `prepare` makes the
        // bound plan stale: re-resolve through the cache so stale
        // plans are never served.
        let (stmt, cached) = if bound.epoch == shared.db.catalog_epoch()
            && bound.stats_epoch == shared.db.stats_epoch()
        {
            (Arc::clone(&bound), true)
        } else {
            shared.cache.get_or_build(
                &shared.db,
                &shared.sigma,
                &bound.sql,
                bound.strategy,
                &build_options,
            )?
        };
        let rows = shared
            .db
            .execute_plan_with(&stmt.plan, &options)
            .map_err(ServeError::Engine)?;
        Ok((stmt, rows, cached))
    })();
    let elapsed_us = queued_at.elapsed().as_micros() as u64;
    finish_query(
        state,
        &bound.sql,
        bound.strategy,
        &trace,
        start_unix_ms,
        elapsed_us,
        options.threads,
        &result,
    );
    let (stmt, rows, cached) = result?;
    // Refresh the binding so the next `execute` hits the epoch check.
    state.statements.insert(statement_id, stmt);
    Ok(QueryOutcome {
        rows,
        cached,
        elapsed_us,
    })
}

fn run_script(shared: &Shared, sql: &str, queued_at: Instant) -> Result<(), ServeError> {
    let _permit = admit(shared, queued_at)?;
    shared.db.run_script(sql).map_err(ServeError::Engine)?;
    Ok(())
}

fn set_option(state: &mut SessionState, name: &str, value: &Json) -> Result<(), ServeError> {
    fn uint(value: &Json) -> Option<u64> {
        match value {
            Json::UInt(v) => Some(*v),
            Json::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }
    let bad = |what: &str| ServeError::Protocol(format!("`set {name}` expects {what}, got {value:?}"));
    match name {
        "threads" => {
            let v = uint(value)
                .filter(|v| (1..=256).contains(v))
                .ok_or_else(|| bad("an integer in 1..=256"))?;
            state.options.threads = v as usize;
        }
        "timeout_ms" => {
            let v = uint(value).ok_or_else(|| bad("a non-negative integer (0 clears)"))?;
            state.options.limits.timeout = (v > 0).then(|| Duration::from_millis(v));
        }
        "mem_limit" => {
            let v = uint(value).ok_or_else(|| bad("a byte count (0 clears)"))?;
            state.options.limits.max_memory_bytes = (v > 0).then_some(v);
        }
        "max_rows" => {
            let v = uint(value).ok_or_else(|| bad("a row count (0 clears)"))?;
            state.options.limits.max_rows = (v > 0).then_some(v);
        }
        "strategy" => {
            let Json::Str(s) = value else {
                return Err(bad("one of original|rewritten|annotated"));
            };
            state.strategy =
                Strategy::parse(s).ok_or_else(|| bad("one of original|rewritten|annotated"))?;
        }
        "slow_query_us" => {
            let v = uint(value).ok_or_else(|| bad("a microsecond threshold (0 disables)"))?;
            state.slow_query_us = v;
        }
        _ => {
            return Err(ServeError::Protocol(format!(
                "unknown session option `{name}` (have threads, timeout_ms, mem_limit, \
                 max_rows, strategy, slow_query_us)"
            )))
        }
    }
    Ok(())
}

/// Close out a finished (or failed) query: global counters, per-phase
/// histograms, the flight-recorder entry, and the slow-query log.
#[allow(clippy::too_many_arguments)]
fn finish_query(
    state: &SessionState,
    sql: &str,
    strategy: Strategy,
    trace: &TraceContext,
    start_unix_ms: u64,
    elapsed_us: u64,
    threads: usize,
    result: &Result<(Arc<CachedStatement>, Rows, bool), ServeError>,
) {
    let spans = trace.take_records();
    record_query(elapsed_us);
    let registry = conquer_obs::registry();
    for (name, wall) in conquer_obs::phase_totals(&spans) {
        registry
            .histogram(&format!("serve.phase.{name}.us"))
            .record(wall.as_micros() as u64);
    }
    let (status, error, cached, rows_out, rows_in, est_rows, trip) = match result {
        Ok((stmt, rows, cached)) => (
            "ok",
            None,
            *cached,
            rows.rows.len() as u64,
            stmt.base_rows,
            stmt.est_rows,
            None,
        ),
        Err(e) => (
            e.code().label(),
            Some(e.to_string()),
            false,
            0,
            0,
            None,
            trip_snapshot(e),
        ),
    };
    let worker_spans = spans.iter().filter(|s| s.name == "worker").count() as u64;
    let recorded = flight_recorder().record(QueryTrace {
        query_id: trace.id().value(),
        session: state.id,
        sql_hash: conquer_obs::sql_hash(sql),
        sql: conquer_obs::sql_snippet(sql),
        strategy: strategy.label(),
        status,
        error,
        cached,
        elapsed_us,
        rows_out,
        rows_in,
        est_rows,
        threads,
        worker_spans,
        start_unix_ms,
        trip,
        spans,
    });
    if status != "ok" {
        registry.counter("serve.queries.error").inc();
    }
    let threshold = state.slow_query_us;
    if threshold > 0 && (elapsed_us >= threshold || status != "ok") {
        registry.counter("serve.slow_query.logged").inc();
        conquer_obs::log_slow_query(&recorded, threshold);
    }
}

fn stats_json(shared: &Shared, state: &SessionState) -> Json {
    let cache = shared.cache.stats();
    let mut admission = shared.admission.stats();
    // Event-loop mode: requests waiting in the run queue for a query
    // worker are queued for admission in every sense that matters, so the
    // gauge folds them in.
    admission.queue_depth += shared.run_queue_depth();
    Json::obj([
        (
            "server",
            Json::obj([
                ("version", Json::from(SERVER_VERSION)),
                (
                    "active_sessions",
                    Json::UInt(shared.active_sessions() as u64),
                ),
                ("max_sessions", Json::UInt(shared.max_sessions as u64)),
                ("catalog_epoch", Json::UInt(shared.db.catalog_epoch())),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("entries", Json::UInt(cache.entries as u64)),
                ("capacity", Json::UInt(cache.capacity as u64)),
                ("hits", Json::UInt(cache.hits)),
                ("misses", Json::UInt(cache.misses)),
                ("invalidations", Json::UInt(cache.invalidations)),
                ("evictions", Json::UInt(cache.evictions)),
                ("hit_rate", Json::Float(cache.hit_rate())),
            ]),
        ),
        (
            "admission",
            Json::obj([
                ("in_flight", Json::UInt(admission.in_flight as u64)),
                ("queue_depth", Json::UInt(admission.queue_depth as u64)),
                (
                    "max_concurrent",
                    Json::UInt(admission.max_concurrent as u64),
                ),
                ("admitted", Json::UInt(admission.admitted)),
                ("rejected", Json::UInt(admission.rejected)),
            ]),
        ),
        (
            "session",
            Json::obj([
                ("id", Json::UInt(state.id)),
                ("strategy", Json::from(state.strategy.label())),
                ("threads", Json::UInt(state.options.threads as u64)),
                (
                    "prepared_statements",
                    Json::UInt(state.statements.len() as u64),
                ),
            ]),
        ),
        (
            "storage",
            match shared.db.storage_status() {
                Some(status) => Json::obj([
                    ("durable", Json::Bool(true)),
                    ("generation", Json::UInt(status.generation)),
                    ("last_seq", Json::UInt(status.last_seq)),
                    ("wal_bytes", Json::UInt(status.wal_bytes)),
                    ("wal_unsynced_bytes", Json::UInt(status.wal_unsynced_bytes)),
                    ("segments", Json::UInt(status.segments)),
                ]),
                None => Json::obj([("durable", Json::Bool(false))]),
            },
        ),
        (
            "indexes",
            Json::arr(
                shared
                    .db
                    .index_status()
                    .into_iter()
                    .map(|(table, cols, built)| {
                        Json::obj([
                            ("table", Json::from(table.as_str())),
                            ("columns", Json::from(cols.join(",").as_str())),
                            ("built", Json::Bool(built)),
                        ])
                    }),
            ),
        ),
        ("obs", conquer_obs::registry().snapshot_json()),
    ])
}

pub(crate) fn error_response(e: &ServeError) -> Response {
    Response::Error {
        code: e.code(),
        message: e.to_string(),
    }
}

fn record_query(elapsed_us: u64) {
    let registry = conquer_obs::registry();
    registry.counter("serve.queries").inc();
    registry.histogram("serve.query.us").record(elapsed_us);
}

/// Wall-clock milliseconds since the unix epoch (0 if the clock is before
/// the epoch, which only a badly skewed clock can produce).
fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Governor-trip details for the flight recorder, when the failure was a
/// resource-limit trip (directly from execution, or surfaced through a
/// rewrite-time materialization).
fn trip_snapshot(e: &ServeError) -> Option<TripSnapshot> {
    let engine_error = match e {
        ServeError::Engine(e) => e,
        ServeError::Rewrite(RewriteError::Engine(e)) => e,
        _ => return None,
    };
    let (kind, trip) = match engine_error {
        EngineError::Timeout(t) => ("timeout", t),
        EngineError::MemoryExceeded(t) => ("memory", t),
        EngineError::RowLimitExceeded(t) => ("rows", t),
        EngineError::Cancelled(t) => ("cancelled", t),
        _ => return None,
    };
    Some(TripSnapshot {
        kind,
        operator: trip.operator.to_string(),
        elapsed_ms: trip.elapsed_ms,
        rows: trip.rows,
        mem_bytes: trip.mem_bytes,
    })
}
