//! The `conquer-client` binary: a line-oriented client for conquer-serve.
//!
//! Reads commands from stdin (interactive or piped — the CI smoke job
//! pipes a scripted session). A line starting with `\` is a client
//! command; anything else is SQL sent as a `query`:
//!
//! ```text
//! \set threads 2            session option (threads, timeout_ms,
//!                           mem_limit, max_rows, strategy)
//! \prepare SELECT ...       prepare; prints the statement id
//! \execute 1                execute a prepared statement
//! \close 1                  drop a prepared statement
//! \script CREATE TABLE ...  DDL/DML script (bumps the catalog epoch)
//! \stats                    server statistics (JSON)
//! \ping                     liveness probe
//! \shutdown                 stop the server
//! \quit                     close the session
//! ```

use std::io::{self, BufRead, Write};
use std::process::ExitCode;

use conquer_obs::Json;
use conquer_serve::{Client, ClientError, QueryOutcome};

const USAGE: &str = "usage: conquer-client [--addr HOST:PORT] [--quiet]";

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => {
                    eprintln!("missing value for --addr\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        println!(
            "connected to conquer-serve {} (session {})",
            client.server_version(),
            client.session()
        );
    }

    let stdin = io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with("--") {
            continue;
        }
        match run_line(&mut client, line, quiet) {
            Ok(Continue::Yes) => {}
            Ok(Continue::No) => return ExitCode::SUCCESS,
            // Server-side errors are printed and the session continues;
            // transport errors end it.
            Err(e @ ClientError::Io(_)) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
            Err(e) => println!("error: {e}"),
        }
        let _ = io::stdout().flush();
    }
    // EOF without \quit: close politely.
    let _ = client.quit();
    ExitCode::SUCCESS
}

enum Continue {
    Yes,
    No,
}

fn run_line(client: &mut Client, line: &str, quiet: bool) -> Result<Continue, ClientError> {
    if let Some(command) = line.strip_prefix('\\') {
        let (verb, rest) = command
            .split_once(char::is_whitespace)
            .unwrap_or((command, ""));
        let rest = rest.trim();
        match verb {
            "set" => {
                let (name, value) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| ClientError::Protocol("\\set needs NAME VALUE".into()))?;
                client.set(name, parse_value(value.trim()))?;
                println!("ok");
            }
            "prepare" => {
                let id = client.prepare(rest, None)?;
                println!("prepared {id}");
            }
            "execute" => {
                let id = parse_id(rest)?;
                print_outcome(&client.execute(id)?, quiet);
            }
            "close" => {
                client.close_statement(parse_id(rest)?)?;
                println!("ok");
            }
            "script" => {
                client.script(rest)?;
                println!("ok");
            }
            "stats" => println!("{}", client.stats()?.render_pretty()),
            "ping" => {
                client.ping()?;
                println!("pong");
            }
            "shutdown" => {
                // `shutdown`/`quit` consume the client; run_line borrows it,
                // so send the raw request instead.
                client.roundtrip(&conquer_serve::Request::Shutdown)?;
                println!("server shutting down");
                return Ok(Continue::No);
            }
            "quit" | "q" => {
                client.roundtrip(&conquer_serve::Request::Quit)?;
                println!("bye");
                return Ok(Continue::No);
            }
            other => return Err(ClientError::Protocol(format!("unknown command \\{other}"))),
        }
        return Ok(Continue::Yes);
    }
    print_outcome(&client.query(line)?, quiet);
    Ok(Continue::Yes)
}

fn parse_id(s: &str) -> Result<u64, ClientError> {
    s.parse()
        .map_err(|_| ClientError::Protocol(format!("`{s}` is not a statement id")))
}

/// Bare integers become numbers; everything else is a string.
fn parse_value(s: &str) -> Json {
    match s.parse::<u64>() {
        Ok(v) => Json::UInt(v),
        Err(_) => Json::Str(s.to_string()),
    }
}

fn print_outcome(outcome: &QueryOutcome, quiet: bool) {
    if quiet {
        println!("{} rows", outcome.rows.rows.len());
        return;
    }
    print!("{}", outcome.rows.to_text());
    println!(
        "({} rows, {}, {} us)",
        outcome.rows.rows.len(),
        if outcome.cached { "cached" } else { "uncached" },
        outcome.elapsed_us
    );
}
