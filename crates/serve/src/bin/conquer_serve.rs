//! The `conquer-serve` binary: bind a TCP listener and serve the ConQuer
//! pipeline over the frame protocol.
//!
//! ```text
//! conquer-serve [--port N] [--tpch-sf F [--inconsistency P] [--annotate]]
//!               [--script FILE [--keys rel:col+col,rel2:col]]
//!               [--data-dir DIR [--sync always|interval:<ms>|never]
//!                [--checkpoint-wal-bytes N] [--checkpoint-interval-ms N]]
//!               [--max-sessions N] [--admit N] [--queue-wait-ms N]
//!               [--io-threads N] [--workers N]
//!               [--cache N] [--metrics-port N] [--slow-query-us N]
//! ```
//!
//! Data comes from exactly one of `--tpch-sf` (generate + inject TPC-H) or
//! `--script` (run a SQL file; pair with `--keys` for the constraint set).
//! With neither, the server starts empty — clients create tables with the
//! `script` op. Prints `listening on ADDR` once accepting (the CI smoke job
//! and the bench harness scrape that line), and `metrics on ADDR` when
//! `--metrics-port` enables the HTTP exposition endpoint (`/metrics`,
//! `/metrics.json`, `/traces`). `--slow-query-us` sets the default
//! slow-query log threshold (JSON lines on stderr; 0 disables).
//!
//! `--io-threads` sizes the event loop's connection-driver pool
//! (`--io-threads 0` selects the legacy thread-per-connection mode) and
//! `--workers` the query-worker pool (0 means match `--admit`).
//!
//! `--data-dir` makes the catalog durable: mutations are write-ahead
//! logged, a background checkpointer folds the WAL into immutable
//! segments, and a restart recovers the catalog before accepting
//! connections (printing `recovered N tables ...`). When the recovered
//! catalog is non-empty, `--tpch-sf`/`--script` seeding is skipped — the
//! disk is the source of truth.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use conquer_core::ConstraintSet;
use conquer_engine::{Checkpointer, Database, DurabilityOptions, SyncPolicy};
use conquer_serve::{serve, ServerConfig};
use conquer_tpch::{build_workload, WorkloadConfig};

struct Args {
    port: u16,
    tpch_sf: Option<f64>,
    inconsistency: f64,
    annotate: bool,
    script: Option<String>,
    keys: Vec<(String, Vec<String>)>,
    data_dir: Option<String>,
    sync: SyncPolicy,
    checkpoint_wal_bytes: u64,
    checkpoint_interval_ms: u64,
    max_sessions: usize,
    admit: usize,
    queue_wait_ms: u64,
    io_threads: usize,
    workers: usize,
    cache: usize,
    metrics_port: Option<u16>,
    slow_query_us: u64,
}

impl Default for Args {
    fn default() -> Args {
        let defaults = ServerConfig::default();
        let durability = DurabilityOptions::default();
        Args {
            port: 7878,
            tpch_sf: None,
            inconsistency: 0.05,
            annotate: false,
            script: None,
            keys: Vec::new(),
            data_dir: None,
            sync: durability.sync,
            checkpoint_wal_bytes: durability.checkpoint_wal_bytes,
            checkpoint_interval_ms: 60_000,
            max_sessions: defaults.max_sessions,
            admit: defaults.max_concurrent,
            queue_wait_ms: defaults.queue_wait.as_millis() as u64,
            io_threads: defaults.io_threads,
            workers: defaults.workers,
            cache: defaults.cache_capacity,
            metrics_port: None,
            slow_query_us: defaults.slow_query_us,
        }
    }
}

const USAGE: &str = "usage: conquer-serve [--port N] [--tpch-sf F [--inconsistency P] [--annotate]]
                     [--script FILE [--keys rel:col+col,rel2:col]]
                     [--data-dir DIR [--sync always|interval:<ms>|never]
                      [--checkpoint-wal-bytes N] [--checkpoint-interval-ms N]]
                     [--max-sessions N] [--admit N] [--queue-wait-ms N]
                     [--io-threads N] [--workers N] [--cache N]
                     [--metrics-port N] [--slow-query-us N]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--port" => {
                args.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--tpch-sf" => {
                args.tpch_sf = Some(
                    value("--tpch-sf")?
                        .parse()
                        .map_err(|e| format!("--tpch-sf: {e}"))?,
                )
            }
            "--inconsistency" => {
                args.inconsistency = value("--inconsistency")?
                    .parse()
                    .map_err(|e| format!("--inconsistency: {e}"))?
            }
            "--annotate" => args.annotate = true,
            "--script" => args.script = Some(value("--script")?),
            "--keys" => args.keys = parse_keys(&value("--keys")?)?,
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--sync" => args.sync = SyncPolicy::parse(&value("--sync")?)?,
            "--checkpoint-wal-bytes" => {
                args.checkpoint_wal_bytes = value("--checkpoint-wal-bytes")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-wal-bytes: {e}"))?
            }
            "--checkpoint-interval-ms" => {
                args.checkpoint_interval_ms = value("--checkpoint-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--checkpoint-interval-ms: {e}"))?
            }
            "--max-sessions" => {
                args.max_sessions = value("--max-sessions")?
                    .parse()
                    .map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--admit" => {
                args.admit = value("--admit")?
                    .parse()
                    .map_err(|e| format!("--admit: {e}"))?
            }
            "--queue-wait-ms" => {
                args.queue_wait_ms = value("--queue-wait-ms")?
                    .parse()
                    .map_err(|e| format!("--queue-wait-ms: {e}"))?
            }
            "--io-threads" => {
                args.io_threads = value("--io-threads")?
                    .parse()
                    .map_err(|e| format!("--io-threads: {e}"))?
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?
            }
            "--metrics-port" => {
                args.metrics_port = Some(
                    value("--metrics-port")?
                        .parse()
                        .map_err(|e| format!("--metrics-port: {e}"))?,
                )
            }
            "--slow-query-us" => {
                args.slow_query_us = value("--slow-query-us")?
                    .parse()
                    .map_err(|e| format!("--slow-query-us: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.tpch_sf.is_some() && args.script.is_some() {
        return Err("--tpch-sf and --script are mutually exclusive".to_string());
    }
    Ok(args)
}

/// `rel:col+col,rel2:col` → key constraints.
fn parse_keys(spec: &str) -> Result<Vec<(String, Vec<String>)>, String> {
    spec.split(',')
        .filter(|part| !part.is_empty())
        .map(|part| {
            let (rel, cols) = part
                .split_once(':')
                .ok_or_else(|| format!("--keys entry `{part}` is not rel:col+col"))?;
            let cols: Vec<String> = cols.split('+').map(str::to_string).collect();
            if rel.is_empty() || cols.iter().any(String::is_empty) {
                return Err(format!("--keys entry `{part}` has an empty name"));
            }
            Ok((rel.to_string(), cols))
        })
        .collect()
}

fn build_database(args: &Args) -> Result<(Arc<Database>, ConstraintSet), String> {
    // Open (and recover) the durable catalog first: when it already holds
    // tables, seeding is skipped — the disk is the source of truth.
    let durable_db = match &args.data_dir {
        Some(dir) => {
            let db = Database::open(
                std::path::Path::new(dir),
                DurabilityOptions {
                    sync: args.sync,
                    checkpoint_wal_bytes: args.checkpoint_wal_bytes,
                },
            )
            .map_err(|e| format!("--data-dir {dir}: {e}"))?;
            let recovered = db.table_names().len();
            eprintln!(
                "recovered {recovered} tables from {dir} (sync={})",
                args.sync
            );
            Some(db)
        }
        None => None,
    };
    let already_loaded = durable_db
        .as_ref()
        .is_some_and(|db| !db.table_names().is_empty());

    if let Some(sf) = args.tpch_sf {
        let sigma = conquer_tpch::benchmark_constraints();
        if already_loaded {
            eprintln!("data dir is non-empty; skipping TPC-H seeding");
            let db = durable_db.ok_or("unreachable: already_loaded implies durable")?;
            return Ok((Arc::new(db), sigma));
        }
        eprintln!("generating TPC-H sf={sf} (p={})...", args.inconsistency);
        let workload = build_workload(&WorkloadConfig {
            scale_factor: sf,
            p: args.inconsistency,
            annotate: args.annotate,
            ..WorkloadConfig::default()
        });
        let Some(db) = durable_db else {
            return Ok((Arc::new(workload.db), workload.sigma));
        };
        // Copy the generated tables into the durable catalog (each copy is
        // logged as a snapshot record, so the load itself is durable).
        for name in workload.db.table_names() {
            let table = workload.db.table(&name).map_err(|e| e.to_string())?;
            db.register((*table).clone())
                .map_err(|e| format!("--data-dir: {e}"))?;
        }
        return Ok((Arc::new(db), workload.sigma));
    }

    let db = durable_db.unwrap_or_default();
    if let Some(path) = &args.script {
        if already_loaded {
            eprintln!("data dir is non-empty; skipping --script seeding");
        } else {
            let sql = std::fs::read_to_string(path).map_err(|e| format!("--script {path}: {e}"))?;
            db.run_script(&sql)
                .map_err(|e| format!("--script {path}: {e}"))?;
        }
    }
    let mut sigma = ConstraintSet::new();
    for (rel, cols) in &args.keys {
        sigma
            .add_key(rel.clone(), cols.iter().cloned())
            .map_err(|e| format!("--keys: {e}"))?;
    }
    Ok((Arc::new(db), sigma))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (db, sigma) = match build_database(&args) {
        Ok(built) => built,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        addr: format!("127.0.0.1:{}", args.port),
        max_sessions: args.max_sessions,
        max_concurrent: args.admit,
        queue_wait: Duration::from_millis(args.queue_wait_ms),
        io_threads: args.io_threads,
        workers: args.workers,
        cache_capacity: args.cache,
        metrics_addr: args.metrics_port.map(|p| format!("127.0.0.1:{p}")),
        slow_query_us: args.slow_query_us,
        ..ServerConfig::default()
    };
    // Background checkpointer: folds the WAL into segments on an interval
    // and ticks the interval-sync policy. Dropped (stopped and joined)
    // after the server exits.
    let checkpointer = (db.is_durable() && args.checkpoint_interval_ms > 0).then(|| {
        Checkpointer::spawn(
            Arc::clone(&db),
            Duration::from_millis(args.checkpoint_interval_ms),
        )
    });
    let server = match serve(Arc::clone(&db), sigma, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    if let Some(metrics_addr) = server.metrics_addr() {
        println!("metrics on {metrics_addr}");
    }
    server.wait();
    drop(checkpointer);
    // Graceful shutdown: fold everything into a checkpoint and fsync, so
    // the next boot replays nothing.
    if db.is_durable() {
        match db.checkpoint().and_then(|_| db.flush()) {
            Ok(()) => eprintln!("checkpointed on shutdown"),
            Err(e) => eprintln!("shutdown checkpoint failed: {e}"),
        }
    }
    eprintln!("server stopped");
    ExitCode::SUCCESS
}
