//! Server-side error type, with a lossless mapping onto the wire-protocol
//! [`ErrorCode`]s so clients can react structurally (retry on `busy`,
//! re-prepare on `unknown_statement`, surface the rest).

use std::fmt;

use conquer_core::RewriteError;
use conquer_engine::EngineError;
use conquer_sql::ParseError;

use crate::protocol::ErrorCode;

/// Anything that can go wrong while serving one request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the request (queue full past the wait
    /// deadline, or the session cap is reached).
    Busy(String),
    /// Malformed request: unknown op, bad field, unsupported `SET` name.
    Protocol(String),
    /// The SQL text failed to parse.
    Parse(ParseError),
    /// The ConQuer rewriting rejected the query.
    Rewrite(RewriteError),
    /// `execute` named a statement id this session never prepared (or
    /// already closed).
    UnknownStatement(u64),
    /// Engine planning or execution failure, including limit trips.
    Engine(EngineError),
}

impl ServeError {
    /// The wire-protocol code for this error. Limit trips that surface
    /// through the rewriting layer (`RewriteError::Engine`) keep their
    /// structured code rather than collapsing into `rewrite`.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Busy(_) => ErrorCode::Busy,
            ServeError::Protocol(_) => ErrorCode::Protocol,
            ServeError::Parse(_) => ErrorCode::Parse,
            ServeError::Rewrite(RewriteError::Engine(e)) => ErrorCode::from_engine(e),
            ServeError::Rewrite(_) => ErrorCode::Rewrite,
            ServeError::UnknownStatement(_) => ErrorCode::UnknownStatement,
            ServeError::Engine(e) => ErrorCode::from_engine(e),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Busy(msg) => write!(f, "server busy: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Parse(e) => write!(f, "{e}"),
            ServeError::Rewrite(e) => write!(f, "{e}"),
            ServeError::UnknownStatement(id) => write!(f, "unknown statement id {id}"),
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RewriteError> for ServeError {
    fn from(e: RewriteError) -> ServeError {
        ServeError::Rewrite(e)
    }
}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> ServeError {
        ServeError::Engine(e)
    }
}

impl From<ParseError> for ServeError {
    fn from(e: ParseError) -> ServeError {
        ServeError::Parse(e)
    }
}
