//! Blocking client for the conquer-serve wire protocol. Used by the
//! `conquer-client` binary, the bench harness's closed-loop load generator,
//! and the end-to-end tests.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use conquer_obs::Json;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, QueryOutcome, Request, Response, Strategy,
};

/// A client-side failure: transport, protocol, or a structured server error.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered with a structured error frame.
    Server {
        code: ErrorCode,
        message: String,
    },
}

impl ClientError {
    /// `true` for admission/session-cap rejections — the retryable case.
    pub fn is_busy(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrorCode::Busy,
                ..
            }
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.label())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection = one server session. Strictly request/response; every
/// method blocks until the server replies.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    session: u64,
    server_version: String,
}

impl Client {
    /// Connect and consume the `Hello` greeting. An over-capacity server
    /// greets with a `busy` error instead, surfaced as
    /// [`ClientError::is_busy`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            session: 0,
            server_version: String::new(),
        };
        match client.read_response()? {
            Response::Hello { session, version } => {
                client.session = session;
                client.server_version = version;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Protocol(format!(
                "expected hello, got {other:?}"
            ))),
        }
    }

    /// Server-assigned session id.
    pub fn session(&self) -> u64 {
        self.session
    }

    pub fn server_version(&self) -> &str {
        &self.server_version
    }

    /// Fail reads that stall longer than `timeout` (e.g. a hung server)
    /// instead of blocking forever.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream)? {
            Some(json) => Response::from_json(&json).map_err(ClientError::Protocol),
            None => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Send one request and read its response, surfacing error frames as
    /// [`ClientError::Server`].
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.to_json())?;
        match self.read_response()? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn expect_rows(&mut self, request: &Request) -> Result<QueryOutcome, ClientError> {
        match self.roundtrip(request)? {
            Response::Rows(outcome) => Ok(outcome),
            other => Err(ClientError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.roundtrip(request)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::Protocol(format!("expected ok, got {other:?}"))),
        }
    }

    /// Run SQL under the session strategy (or an explicit override).
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome, ClientError> {
        self.query_with(sql, None)
    }

    pub fn query_with(
        &mut self,
        sql: &str,
        strategy: Option<Strategy>,
    ) -> Result<QueryOutcome, ClientError> {
        self.expect_rows(&Request::Query {
            sql: sql.to_string(),
            strategy,
        })
    }

    /// Prepare a statement; returns the session-local id for [`execute`](Client::execute).
    pub fn prepare(&mut self, sql: &str, strategy: Option<Strategy>) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Prepare {
            sql: sql.to_string(),
            strategy,
        })? {
            Response::Prepared { statement } => Ok(statement),
            other => Err(ClientError::Protocol(format!(
                "expected prepared, got {other:?}"
            ))),
        }
    }

    pub fn execute(&mut self, statement: u64) -> Result<QueryOutcome, ClientError> {
        self.expect_rows(&Request::Execute { statement })
    }

    pub fn close_statement(&mut self, statement: u64) -> Result<(), ClientError> {
        self.expect_ok(&Request::CloseStatement { statement })
    }

    /// `SET name value` — threads, timeout_ms, mem_limit, max_rows, strategy.
    pub fn set(&mut self, name: &str, value: Json) -> Result<(), ClientError> {
        self.expect_ok(&Request::Set {
            name: name.to_string(),
            value,
        })
    }

    /// Run a `;`-separated DDL/DML script (bumps the catalog epoch).
    pub fn script(&mut self, sql: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::Script {
            sql: sql.to_string(),
        })
    }

    /// Server/cache/admission/session statistics snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Flight-recorder summaries for the most recent queries (newest first).
    pub fn trace_recent(&mut self, limit: Option<u64>) -> Result<Json, ClientError> {
        self.expect_traces(&Request::TraceRecent { limit })
    }

    /// The full trace (span tree included) for one recorded query id.
    pub fn trace_get(&mut self, query_id: u64) -> Result<Json, ClientError> {
        self.expect_traces(&Request::TraceGet { query_id })
    }

    fn expect_traces(&mut self, request: &Request) -> Result<Json, ClientError> {
        match self.roundtrip(request)? {
            Response::Traces(traces) => Ok(traces),
            other => Err(ClientError::Protocol(format!(
                "expected traces, got {other:?}"
            ))),
        }
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping)
    }

    /// Polite goodbye; the server closes the session after responding.
    pub fn quit(mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Quit)
    }

    /// Ask the server to shut down (stop accepting, close sessions).
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown)
    }
}
