//! # conquer-serve — a concurrent SQL server for the ConQuer stack
//!
//! Exposes the in-process ConQuer pipeline (parse → ConQuer rewrite → plan
//! → execute) to concurrent clients over TCP, with nothing beyond `std`:
//!
//! * **Wire protocol** ([`protocol`]) — length-prefixed JSON frames over
//!   `std::net::TcpStream`; requests carry SQL + a per-query
//!   [`Strategy`]; responses carry schema-complete result sets whose
//!   values round-trip bit-identically (tagged dates and non-finite
//!   floats).
//! * **Sessions** ([`server`], `session`) — one thread per connection, a
//!   shared `Arc<Database>`, per-session `ExecOptions` via `SET`
//!   (`threads`, `timeout_ms`, `mem_limit`, `max_rows`, `strategy`), and a
//!   disconnect watchdog that cancels in-flight queries through the
//!   governor when the client goes away.
//! * **Admission control** ([`admission`]) — a semaphore-bounded run queue
//!   with a queue-wait deadline; overload degrades to a structured `busy`
//!   error instead of a hang.
//! * **Rewrite/plan cache** ([`cache`]) — an LRU over
//!   `(SQL, strategy, catalog epoch)` caching the parsed AST, the ConQuer
//!   rewriting, and the physical plan (CTEs materialized). Catalog
//!   mutations bump the epoch; stale plans are never served.
//!
//! ```no_run
//! use std::sync::Arc;
//! use conquer_engine::Database;
//! use conquer_core::ConstraintSet;
//! use conquer_serve::{serve, Client, ServerConfig};
//!
//! let db = Arc::new(Database::new());
//! db.run_script("create table t (k text, v int); insert into t values ('a', 1);").unwrap();
//! let sigma = ConstraintSet::new().with_key("t", ["k"]);
//! let server = serve(db, sigma, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let outcome = client.query("select k from t").unwrap();
//! assert_eq!(outcome.rows.rows.len(), 1);
//! client.quit().unwrap();
//! ```

pub mod admission;
pub mod cache;
pub mod client;
pub mod error;
mod metrics_http;
pub mod protocol;
pub mod server;
mod session;

pub use admission::{Admission, AdmissionStats, Permit};
pub use cache::{CacheStats, CachedStatement, StatementCache};
pub use client::{Client, ClientError};
pub use error::ServeError;
pub use protocol::{ErrorCode, QueryOutcome, Request, Response, Strategy};
pub use server::{serve, ServerConfig, ServerHandle, Shared};
pub use session::SERVER_VERSION;
