//! # conquer-serve — a concurrent SQL server for the ConQuer stack
//!
//! Exposes the in-process ConQuer pipeline (parse → ConQuer rewrite → plan
//! → execute) to concurrent clients over TCP, with nothing beyond `std`:
//!
//! * **Wire protocol** ([`protocol`]) — length-prefixed JSON frames over
//!   `std::net::TcpStream`; requests carry SQL + a per-query
//!   [`Strategy`]; responses carry schema-complete result sets whose
//!   values round-trip bit-identically (tagged dates and non-finite
//!   floats).
//! * **Serving core** ([`server`], `event`) — a readiness-polled event
//!   loop: a fixed pool of `io_threads` drivers multiplexes every
//!   connection over nonblocking sockets, and a fixed pool of query
//!   workers executes admission-gated requests from a bounded run queue.
//!   Session state (per-connection `ExecOptions` via `SET` — `threads`,
//!   `timeout_ms`, `mem_limit`, `max_rows`, `strategy` — plus prepared
//!   statements) lives in explicit per-connection structs (`state`);
//!   client disconnects surface as EOF on the driver and cancel in-flight
//!   queries through the governor. `io_threads: 0` selects the legacy
//!   thread-per-connection mode (`session`), kept one release as a
//!   differential oracle.
//! * **Admission control** ([`admission`]) — a semaphore-bounded run queue
//!   with a queue-wait deadline; overload degrades to a structured `busy`
//!   error instead of a hang.
//! * **Rewrite/plan cache** ([`cache`]) — an LRU over
//!   `(SQL, strategy, catalog epoch)` caching the parsed AST, the ConQuer
//!   rewriting, and the physical plan (CTEs materialized). Catalog
//!   mutations bump the epoch; stale plans are never served.
//!
//! ```no_run
//! use std::sync::Arc;
//! use conquer_engine::Database;
//! use conquer_core::ConstraintSet;
//! use conquer_serve::{serve, Client, ServerConfig};
//!
//! let db = Arc::new(Database::new());
//! db.run_script("create table t (k text, v int); insert into t values ('a', 1);").unwrap();
//! let sigma = ConstraintSet::new().with_key("t", ["k"]);
//! let server = serve(db, sigma, ServerConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let outcome = client.query("select k from t").unwrap();
//! assert_eq!(outcome.rows.rows.len(), 1);
//! client.quit().unwrap();
//! ```

pub mod admission;
pub mod cache;
pub mod client;
pub mod error;
mod event;
mod metrics_http;
pub mod protocol;
pub mod server;
mod session;
mod state;

pub use admission::{Admission, AdmissionStats, Permit};
pub use cache::{CacheStats, CachedStatement, StatementCache};
pub use client::{Client, ClientError};
pub use error::ServeError;
pub use protocol::{ErrorCode, FrameBuf, QueryOutcome, Request, Response, Strategy};
pub use server::{serve, ServerConfig, ServerHandle, Shared};
pub use state::SERVER_VERSION;
