//! The rewrite/plan cache: LRU over (SQL text, strategy, catalog epoch).
//!
//! A cache entry holds everything the parse → rewrite → plan pipeline
//! produces: the parsed AST, the ConQuer rewriting (identity for the
//! `original` strategy), and the physical [`Plan`]. Plans embed `Arc<Rows>`
//! snapshots of the tables they scan *and* the materialized CTE results the
//! rewritings lean on (Section 6.1 of the paper), so a warm hit skips the
//! entire pipeline including CTE materialization — and, equally, a stale
//! plan would silently serve old data. Entries are therefore valid only for
//! the [catalog epoch](conquer_engine::Database::catalog_epoch) they were
//! built under: any `CREATE`/`INSERT`/`DROP` bumps the epoch and the next
//! lookup rebuilds (`invalidations` counter), so stale plans are never
//! served.
//!
//! Concurrency: lookups and inserts take one short mutex; statement
//! *builds* run outside the lock, so a miss never blocks other sessions'
//! hits. Two sessions missing on the same key may both build — the second
//! insert wins, which is wasted work but never wrong (documented
//! thundering-herd tradeoff; the bench workload's hit rate makes it
//! irrelevant after warmup).
//!
//! Build options: entries are shared across sessions but built by
//! whichever session misses first, so the `ExecOptions` passed to
//! [`StatementCache::get_or_build`] must be session-independent — the
//! server passes its fixed [`build_options`](crate::ServerConfig) (plus
//! the requesting query's cancellation token, which never shapes the
//! plan), never the session's own `SET` limits. Per-session limits govern
//! execution of the cached plan, not its construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use conquer_core::{is_annotated, prepare_rewrite, ConstraintSet, RewriteOptions};
use conquer_engine::{Database, Estimator, ExecOptions, Plan};
use conquer_sql::ast::Query;
use conquer_sql::parse_query;

use crate::error::ServeError;
use crate::protocol::Strategy;

/// A fully prepared statement: every artifact of the pipeline, shareable
/// across sessions.
#[derive(Debug)]
pub struct CachedStatement {
    pub sql: String,
    pub strategy: Strategy,
    /// Catalog epoch the plan was built under.
    pub epoch: u64,
    /// Table-statistics epoch the plan was built under. Plans embed
    /// cost-based decisions (join order, build sides, right-side filter
    /// pushes), so a plan built from old statistics may be slow even when
    /// its data snapshots are still current; the stats epoch completes the
    /// staleness check.
    pub stats_epoch: u64,
    /// The query as parsed.
    pub ast: Arc<Query>,
    /// What actually executes: the ConQuer rewriting, or `ast` for
    /// [`Strategy::Original`].
    pub exec_query: Arc<Query>,
    /// The physical plan, CTEs materialized.
    pub plan: Arc<Plan>,
    /// Total base-table (and materialized-CTE) rows the plan scans —
    /// the "rows in" reported by query traces.
    pub base_rows: u64,
    /// Planner cardinality estimate for the plan root, when the build ran
    /// with statistics on; traces report it against actual rows out.
    pub est_rows: Option<u64>,
}

/// Build a statement from scratch (the cache-miss path). The epoch is read
/// *before* planning: if the catalog changes mid-build the entry records
/// the older epoch and the next lookup rebuilds — never the reverse.
pub fn build_statement(
    db: &Database,
    sigma: &ConstraintSet,
    sql: &str,
    strategy: Strategy,
    options: &ExecOptions,
) -> Result<CachedStatement, ServeError> {
    let epoch = db.catalog_epoch();
    let stats_epoch = db.stats_epoch();
    let (ast, exec_query) = match strategy {
        Strategy::Original => {
            let ast = Arc::new(parse_query(sql).map_err(ServeError::Parse)?);
            (Arc::clone(&ast), ast)
        }
        Strategy::Rewritten => {
            let prepared = prepare_rewrite(sql, sigma, &RewriteOptions::default())?;
            (prepared.original, prepared.rewritten)
        }
        Strategy::Annotated => {
            if !is_annotated(db, sigma) {
                return Err(ServeError::Rewrite(
                    conquer_core::RewriteError::InvalidConstraint(
                        "database is not annotated; the `annotated` strategy needs the offline \
                         annotation pass"
                            .into(),
                    ),
                ));
            }
            let opts = RewriteOptions {
                annotated: true,
                ..RewriteOptions::default()
            };
            let prepared = prepare_rewrite(sql, sigma, &opts)?;
            (prepared.original, prepared.rewritten)
        }
    };
    let plan = db.plan(&exec_query, options).map_err(ServeError::Engine)?;
    let base_rows = plan.base_rows();
    let est_rows = options.use_stats.then(|| {
        let est = Estimator::from_db(db).est_rows(&plan);
        if est.is_finite() && est >= 0.0 {
            est.round() as u64
        } else {
            0
        }
    });
    Ok(CachedStatement {
        sql: sql.to_string(),
        strategy,
        epoch,
        stats_epoch,
        ast,
        exec_query,
        plan: Arc::new(plan),
        base_rows,
        est_rows,
    })
}

struct Entry {
    stmt: Arc<CachedStatement>,
    last_used: u64,
}

/// Point-in-time cache counters (per instance, not the global registry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub entries: usize,
    pub capacity: usize,
    pub hits: u64,
    pub misses: u64,
    pub invalidations: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over lookups, 0.0 when cold.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The shared statement cache. Keys are `(SQL text, strategy)`; the stored
/// epoch completes the `(sql, strategy, epoch)` cache key from the design —
/// an epoch mismatch is a miss that also drops the stale entry.
pub struct StatementCache {
    entries: Mutex<HashMap<(String, Strategy), Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

/// Static per-strategy counter names: cache hit/miss rates are compared
/// per answering strategy (the paper's per-strategy overhead claim), and
/// static names keep the hot path free of `format!` allocations.
fn strategy_counter(hit: bool, strategy: Strategy) -> &'static str {
    match (hit, strategy) {
        (true, Strategy::Original) => "serve.cache.hit.original",
        (true, Strategy::Rewritten) => "serve.cache.hit.rewritten",
        (true, Strategy::Annotated) => "serve.cache.hit.annotated",
        (false, Strategy::Original) => "serve.cache.miss.original",
        (false, Strategy::Rewritten) => "serve.cache.miss.rewritten",
        (false, Strategy::Annotated) => "serve.cache.miss.annotated",
    }
}

impl StatementCache {
    pub fn new(capacity: usize) -> StatementCache {
        StatementCache {
            entries: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(String, Strategy), Entry>> {
        self.entries.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up a statement valid at `epoch` + `stats_epoch`. A
    /// present-but-stale entry is removed and counted as an invalidation
    /// (plus the miss).
    pub fn get(
        &self,
        sql: &str,
        strategy: Strategy,
        epoch: u64,
        stats_epoch: u64,
    ) -> Option<Arc<CachedStatement>> {
        let key = (sql.to_string(), strategy);
        let mut entries = self.lock();
        match entries.get_mut(&key) {
            Some(entry) if entry.stmt.epoch == epoch && entry.stmt.stats_epoch == stats_epoch => {
                entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                let stmt = Arc::clone(&entry.stmt);
                drop(entries);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let registry = conquer_obs::registry();
                registry.counter("serve.cache.hit").inc();
                registry.counter(strategy_counter(true, strategy)).inc();
                Some(stmt)
            }
            Some(_) => {
                entries.remove(&key);
                drop(entries);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let registry = conquer_obs::registry();
                registry.counter("serve.cache.invalidation").inc();
                registry.counter("serve.cache.miss").inc();
                registry.counter(strategy_counter(false, strategy)).inc();
                None
            }
            None => {
                drop(entries);
                self.misses.fetch_add(1, Ordering::Relaxed);
                let registry = conquer_obs::registry();
                registry.counter("serve.cache.miss").inc();
                registry.counter(strategy_counter(false, strategy)).inc();
                None
            }
        }
    }

    /// Insert (or replace) a built statement, evicting the least-recently
    /// used entry when over capacity.
    pub fn insert(&self, stmt: Arc<CachedStatement>) {
        let key = (stmt.sql.clone(), stmt.strategy);
        let mut entries = self.lock();
        entries.insert(
            key,
            Entry {
                stmt,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        let mut evicted = 0u64;
        while entries.len() > self.capacity {
            let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            entries.remove(&oldest);
            evicted += 1;
        }
        drop(entries);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            conquer_obs::registry()
                .counter("serve.cache.eviction")
                .add(evicted);
        }
    }

    /// The cache-or-build path sessions use. Returns the statement and
    /// whether it was a hit. Builds run outside the cache lock, under
    /// `options` — which must be session-independent (see module docs).
    pub fn get_or_build(
        &self,
        db: &Database,
        sigma: &ConstraintSet,
        sql: &str,
        strategy: Strategy,
        options: &ExecOptions,
    ) -> Result<(Arc<CachedStatement>, bool), ServeError> {
        let epoch = db.catalog_epoch();
        let stats_epoch = db.stats_epoch();
        if let Some(stmt) = self.get(sql, strategy, epoch, stats_epoch) {
            return Ok((stmt, true));
        }
        let stmt = Arc::new(build_statement(db, sigma, sql, strategy, options)?);
        self.insert(Arc::clone(&stmt));
        Ok((stmt, false))
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.lock().len(),
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_db() -> (Database, ConstraintSet) {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, acctbal float);
             insert into customer values ('c1', 2000), ('c1', 100), ('c2', 2500);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        (db, sigma)
    }

    const Q: &str = "select custkey from customer where acctbal > 1000";

    #[test]
    fn hit_after_build_and_invalidation_on_epoch_bump() {
        let (db, sigma) = tiny_db();
        let cache = StatementCache::new(8);
        let options = ExecOptions::default();

        let (first, hit) = cache
            .get_or_build(&db, &sigma, Q, Strategy::Rewritten, &options)
            .unwrap();
        assert!(!hit);
        let (second, hit) = cache
            .get_or_build(&db, &sigma, Q, Strategy::Rewritten, &options)
            .unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&first, &second));

        // Catalog change: the entry is stale, the rebuild sees new data.
        db.run_script("insert into customer values ('c9', 9000)")
            .unwrap();
        let (third, hit) = cache
            .get_or_build(&db, &sigma, Q, Strategy::Rewritten, &options)
            .unwrap();
        assert!(!hit);
        assert!(!Arc::ptr_eq(&first, &third));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.invalidations, 1);
    }

    #[test]
    fn strategies_are_distinct_entries() {
        let (db, sigma) = tiny_db();
        let cache = StatementCache::new(8);
        let options = ExecOptions::default();
        cache
            .get_or_build(&db, &sigma, Q, Strategy::Original, &options)
            .unwrap();
        let (_, hit) = cache
            .get_or_build(&db, &sigma, Q, Strategy::Rewritten, &options)
            .unwrap();
        assert!(!hit, "rewritten must not hit the original entry");
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn lru_eviction_keeps_recent_entries() {
        let (db, sigma) = tiny_db();
        let cache = StatementCache::new(2);
        let options = ExecOptions::default();
        let queries = [
            "select custkey from customer",
            "select acctbal from customer",
            "select custkey, acctbal from customer",
        ];
        for q in &queries {
            cache
                .get_or_build(&db, &sigma, q, Strategy::Original, &options)
                .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
        // The oldest entry is gone, the newest is a hit.
        let epoch = db.catalog_epoch();
        let stats_epoch = db.stats_epoch();
        assert!(cache
            .get(queries[0], Strategy::Original, epoch, stats_epoch)
            .is_none());
        assert!(cache
            .get(queries[2], Strategy::Original, epoch, stats_epoch)
            .is_some());
    }

    #[test]
    fn stats_epoch_mismatch_invalidates() {
        let (db, sigma) = tiny_db();
        let cache = StatementCache::new(8);
        let stmt = Arc::new(
            build_statement(&db, &sigma, Q, Strategy::Original, &ExecOptions::default()).unwrap(),
        );
        cache.insert(Arc::clone(&stmt));
        let epoch = db.catalog_epoch();
        assert!(cache
            .get(Q, Strategy::Original, epoch, db.stats_epoch())
            .is_some());
        // Same catalog epoch, newer statistics: the plan's cost-based
        // choices are stale, so the entry must drop.
        assert!(cache
            .get(Q, Strategy::Original, epoch, db.stats_epoch() + 1)
            .is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn annotated_requires_annotation() {
        let (db, sigma) = tiny_db();
        let cache = StatementCache::new(8);
        let err = cache
            .get_or_build(&db, &sigma, Q, Strategy::Annotated, &ExecOptions::default())
            .unwrap_err();
        assert!(matches!(err, ServeError::Rewrite(_)));
    }
}
