//! Immutable checkpoint segments: one file per table snapshot, written once
//! and never modified.
//!
//! ## On-disk format
//!
//! ```text
//! file  := MAGIC len:u32 payload:[u8; len] crc:u32
//! MAGIC := "CQSEG1\0\0"                       (8 bytes)
//! ```
//!
//! `crc` is the CRC-32 of the payload. The payload itself is opaque to this
//! layer — the engine encodes schema + stats + rows into it. A segment that
//! fails its length or checksum check is rejected whole; recovery treats a
//! bad segment as fatal (unlike the WAL tail, a manifest only ever points
//! at segments that were fully written and fsynced before the manifest was
//! renamed into place, so corruption here means real damage, not a crash
//! window).

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::fault;

pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"CQSEG1\0\0";

/// Write a segment file: magic + length-prefixed payload + trailing CRC,
/// fsynced before return. On a `segment_write_torn` fault trip, a real
/// truncated prefix is left on disk so recovery faces an honest torn file.
pub(crate) fn write_segment(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(SEGMENT_MAGIC.len() + 8 + payload.len());
    buf.extend_from_slice(SEGMENT_MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    if let Err(e) = fault::trip("segment_write_torn") {
        // Leave a deliberately torn file: the magic plus half the payload,
        // no trailing checksum. Crash-matrix tests recover over this.
        let torn_len = SEGMENT_MAGIC.len() + 8 + payload.len() / 2;
        let mut file = File::create(path)?;
        file.write_all(&buf[..torn_len.min(buf.len())])?;
        file.sync_all()?;
        return Err(e);
    }
    let mut file = File::create(path)?;
    file.write_all(&buf)?;
    file.sync_all()?;
    Ok(())
}

/// Read and verify a segment file, returning its payload.
pub(crate) fn read_segment(path: &Path) -> io::Result<Vec<u8>> {
    let mut file = File::open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    parse_segment(&bytes).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt segment file: {}", path.display()),
        )
    })
}

fn parse_segment(bytes: &[u8]) -> Option<Vec<u8>> {
    let rest = bytes.strip_prefix(SEGMENT_MAGIC.as_slice())?;
    if rest.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let payload = rest.get(4..4 + len)?;
    let crc_bytes = rest.get(4 + len..4 + len + 4)?;
    if rest.len() != 4 + len + 4 {
        return None; // trailing garbage is corruption too
    }
    let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(payload) != crc {
        return None;
    }
    Some(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer-seg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn segment_roundtrip() {
        let path = temp_dir("roundtrip").join("seg-1-orders.seg");
        write_segment(&path, b"table payload bytes").unwrap();
        assert_eq!(read_segment(&path).unwrap(), b"table payload bytes");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let path = temp_dir("empty").join("seg-1-empty.seg");
        write_segment(&path, b"").unwrap();
        assert_eq!(read_segment(&path).unwrap(), b"");
    }

    #[test]
    fn corruption_is_rejected_at_every_offset() {
        let path = temp_dir("corrupt").join("seg-1-t.seg");
        write_segment(&path, b"payload-under-test").unwrap();
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut mutated = full.clone();
            mutated[i] ^= 0x40;
            std::fs::write(&path, &mutated).unwrap();
            let err = read_segment(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
        // Truncations are rejected too.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(read_segment(&path).is_err());
        }
    }
}
