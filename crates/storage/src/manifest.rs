//! The manifest: the single small file that names which segments and which
//! WAL generation constitute the database. It is the source of truth —
//! a segment or WAL file not referenced by the manifest does not exist as
//! far as recovery is concerned.
//!
//! ## On-disk format
//!
//! ```text
//! file    := MAGIC body crc:u32
//! MAGIC   := "CQMAN1\0\0"                     (8 bytes)
//! body    := generation:u64 covered_seq:u64
//!            n_meta:u32 (key:str val:u64)*
//!            n_segments:u32 segment*
//! segment := file:str table:str len:u64 crc:u32
//! str     := len:u32 bytes:[u8; len]          (UTF-8)
//! ```
//!
//! `crc` is the CRC-32 of the body. The manifest is written to
//! `MANIFEST.tmp`, fsynced, then atomically renamed over `MANIFEST`, and
//! the directory is fsynced — a crash at any point leaves either the old
//! manifest or the new one, never a mix.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::fault;

pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"CQMAN1\0\0";
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";
pub(crate) const MANIFEST_TMP_NAME: &str = "MANIFEST.tmp";

/// One segment reference in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentEntry {
    /// File name inside the data directory (e.g. `seg-3-orders.seg`).
    pub file: String,
    /// Table the segment snapshots.
    pub table: String,
    /// Expected payload length, cross-checked on read.
    pub len: u64,
    /// Expected payload CRC-32, cross-checked on read.
    pub crc: u32,
}

/// Decoded manifest contents.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Manifest {
    /// Checkpoint generation; names the active WAL file `wal-<gen>.log`.
    pub generation: u64,
    /// WAL records with `seq <= covered_seq` are already inside the
    /// segments; replay skips them. This is what makes a crash between
    /// manifest rename and WAL truncation harmless.
    pub covered_seq: u64,
    /// Application metadata (the engine stores its epochs here).
    pub meta: Vec<(String, u64)>,
    pub segments: Vec<SegmentEntry>,
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn encode(manifest: &Manifest) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&manifest.generation.to_le_bytes());
    body.extend_from_slice(&manifest.covered_seq.to_le_bytes());
    body.extend_from_slice(&(manifest.meta.len() as u32).to_le_bytes());
    for (key, val) in &manifest.meta {
        put_str(&mut body, key);
        body.extend_from_slice(&val.to_le_bytes());
    }
    body.extend_from_slice(&(manifest.segments.len() as u32).to_le_bytes());
    for seg in &manifest.segments {
        put_str(&mut body, &seg.file);
        put_str(&mut body, &seg.table);
        body.extend_from_slice(&seg.len.to_le_bytes());
        body.extend_from_slice(&seg.crc.to_le_bytes());
    }
    let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + body.len() + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    let crc = crc32(&body);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// A tiny cursor over the manifest body; every read is bounds-checked so a
/// corrupt file can never panic the process.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }

    fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

fn decode(bytes: &[u8]) -> Option<Manifest> {
    let rest = bytes.strip_prefix(MANIFEST_MAGIC.as_slice())?;
    if rest.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(body) != crc {
        return None;
    }
    let mut cur = Cursor { bytes: body, at: 0 };
    let generation = cur.u64()?;
    let covered_seq = cur.u64()?;
    let n_meta = cur.u32()?;
    let mut meta = Vec::new();
    for _ in 0..n_meta {
        let key = cur.str()?;
        let val = cur.u64()?;
        meta.push((key, val));
    }
    let n_segments = cur.u32()?;
    let mut segments = Vec::new();
    for _ in 0..n_segments {
        let file = cur.str()?;
        let table = cur.str()?;
        let len = cur.u64()?;
        let crc = cur.u32()?;
        segments.push(SegmentEntry {
            file,
            table,
            len,
            crc,
        });
    }
    if cur.at != body.len() {
        return None; // trailing bytes that the CRC somehow blessed
    }
    Some(Manifest {
        generation,
        covered_seq,
        meta,
        segments,
    })
}

/// Load the manifest from `dir`, or `None` when the directory is fresh.
/// A corrupt manifest is an error, not a silent empty database.
pub(crate) fn load_manifest(dir: &Path) -> io::Result<Option<Manifest>> {
    let path = dir.join(MANIFEST_NAME);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    match decode(&bytes) {
        Some(m) => Ok(Some(m)),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("corrupt manifest: {}", path.display()),
        )),
    }
}

/// Durably install a new manifest: write `MANIFEST.tmp`, fsync it, rename
/// over `MANIFEST`, fsync the directory. The `manifest_rename_fail` fault
/// point fires between the tmp write and the rename — the crash window the
/// atomic rename exists to close.
pub(crate) fn store_manifest(dir: &Path, manifest: &Manifest) -> io::Result<()> {
    let tmp = dir.join(MANIFEST_TMP_NAME);
    let bytes = encode(manifest);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    fault::trip("manifest_rename_fail")?;
    std::fs::rename(&tmp, dir.join(MANIFEST_NAME))?;
    sync_dir(dir)?;
    Ok(())
}

/// fsync a directory so a rename within it is durable. Best-effort on
/// platforms where directories cannot be opened for sync.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    match File::open(dir) {
        Ok(handle) => handle.sync_all(),
        Err(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer-man-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Manifest {
        Manifest {
            generation: 7,
            covered_seq: 42,
            meta: vec![("catalog_epoch".into(), 13), ("stats_epoch".into(), 9)],
            segments: vec![
                SegmentEntry {
                    file: "seg-7-orders.seg".into(),
                    table: "orders".into(),
                    len: 1024,
                    crc: 0xDEAD_BEEF,
                },
                SegmentEntry {
                    file: "seg-7-lineitem.seg".into(),
                    table: "lineitem".into(),
                    len: 0,
                    crc: 0,
                },
            ],
        }
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = temp_dir("roundtrip");
        let m = sample();
        store_manifest(&dir, &m).unwrap();
        assert_eq!(load_manifest(&dir).unwrap(), Some(m));
        // The tmp file must be gone after the rename.
        assert!(!dir.join(MANIFEST_TMP_NAME).exists());
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = temp_dir("missing");
        assert_eq!(load_manifest(&dir).unwrap(), None);
    }

    #[test]
    fn corrupt_manifest_is_an_error_never_a_panic() {
        let dir = temp_dir("corrupt");
        store_manifest(&dir, &sample()).unwrap();
        let full = std::fs::read(dir.join(MANIFEST_NAME)).unwrap();
        for i in 0..full.len() {
            let mut mutated = full.clone();
            mutated[i] ^= 0x10;
            std::fs::write(dir.join(MANIFEST_NAME), &mutated).unwrap();
            assert!(load_manifest(&dir).is_err());
        }
        for cut in 0..full.len() {
            std::fs::write(dir.join(MANIFEST_NAME), &full[..cut]).unwrap();
            assert!(load_manifest(&dir).is_err());
        }
    }

    #[test]
    fn overwrite_replaces_previous_generation() {
        let dir = temp_dir("overwrite");
        let mut m = sample();
        store_manifest(&dir, &m).unwrap();
        m.generation = 8;
        m.covered_seq = 99;
        m.segments.clear();
        store_manifest(&dir, &m).unwrap();
        assert_eq!(load_manifest(&dir).unwrap(), Some(m));
    }
}
