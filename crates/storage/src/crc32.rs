//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum that
//! guards every WAL record, segment payload, and manifest body.
//!
//! Table-driven, std-only. The table is built at first use and cached in a
//! `OnceLock`, so the cost is one 1 KiB computation per process.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, as used by zip/png/ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"conquer-storage");
        let mut corrupted = b"conquer-storage".to_vec();
        corrupted[3] ^= 0x01;
        assert_ne!(base, crc32(&corrupted));
    }
}
