//! Crash/IO fault injection hook.
//!
//! The storage crate cannot depend on `conquer-engine` (the engine depends
//! on us), yet the deterministic fault schedule lives in `engine::faults`.
//! The bridge is a process-global hook: the engine installs a function that
//! consults its thread-local schedule, and every storage IO site calls
//! [`trip`] with a named point before performing the real operation. With
//! no hook installed (production builds, or the engine's `fault-injection`
//! feature off) the call is a single `OnceLock` load.
//!
//! Points the store trips, in IO order:
//!
//! | point | site |
//! |-------|------|
//! | `wal_append_io`       | before writing an assembled WAL record |
//! | `wal_sync_fail`       | before `fsync` of the WAL file |
//! | `segment_write_torn`  | before writing a checkpoint segment; on trip the store writes a deliberately truncated prefix first, so a real torn file is left on disk |
//! | `manifest_rename_fail`| after writing `MANIFEST.tmp`, before the atomic rename |

use std::io;
use std::sync::OnceLock;

/// A fault hook: returns `Err` when the named point should fail.
pub type Hook = fn(&'static str) -> io::Result<()>;

static HOOK: OnceLock<Hook> = OnceLock::new();

/// Install the process-wide fault hook. First install wins; later calls are
/// ignored (the engine installs once per process, schedules are per-thread).
pub fn set_hook(hook: Hook) {
    let _ = HOOK.set(hook);
}

/// Consult the hook for `point`; `Ok(())` when no hook is installed.
pub fn trip(point: &'static str) -> io::Result<()> {
    match HOOK.get() {
        Some(hook) => hook(point),
        None => Ok(()),
    }
}
