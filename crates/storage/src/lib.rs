//! # conquer-storage
//!
//! Durable storage for the ConQuer stack: a checksummed write-ahead log,
//! immutable checkpoint segments, and crash recovery. Std-only, like the
//! rest of the workspace.
//!
//! The crate is payload-agnostic: callers append `(kind, bytes)` records
//! and checkpoint `(table, bytes)` snapshots; what the bytes mean is the
//! engine's business (see `conquer_engine::durable`). The contract this
//! layer provides:
//!
//! - **Log-before-apply.** [`Store::append`] persists a record before the
//!   caller mutates in-memory state, so a crash after the append replays
//!   the mutation and a crash before it loses nothing.
//! - **Torn tails, not torn state.** Every record and segment carries a
//!   CRC-32; recovery stops at the first bad checksum instead of
//!   panicking, and a partially-written final record is dropped whole —
//!   never half-applied.
//! - **Atomic checkpoints.** Segments are written and fsynced *before* the
//!   manifest that references them is renamed into place; the rename is
//!   the commit point. A crash mid-checkpoint (or mid-recovery) recovers
//!   to a consistent state, at most losing the unsynced WAL tail.
//! - **Bounded loss.** With [`SyncPolicy::Always`] a `kill -9` loses
//!   nothing acknowledged; with `IntervalMs`/`Never` it loses at most the
//!   records appended since the last fsync.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod crc32;
pub mod fault;
mod manifest;
mod segment;
mod store;
mod wal;

pub use crc32::crc32;
pub use store::{Recovered, SegmentData, Store, StoreStatus};
pub use wal::WalRecord;

/// When the WAL is fsynced relative to appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync after every append: no acknowledged record is ever lost.
    Always,
    /// fsync when at least this many milliseconds have passed since the
    /// last sync (checked on append and ticked by the checkpointer).
    IntervalMs(u64),
    /// Never fsync outside checkpoints; fastest, loses the tail on crash.
    Never,
}

impl SyncPolicy {
    /// Parse the CLI/`SET` spelling: `always`, `never`, or `interval:<ms>`
    /// (also accepts `interval_ms:<ms>` and `<ms>` alone).
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        let s = s.trim();
        match s {
            "always" => return Ok(SyncPolicy::Always),
            "never" => return Ok(SyncPolicy::Never),
            _ => {}
        }
        let ms = s
            .strip_prefix("interval_ms:")
            .or_else(|| s.strip_prefix("interval:"))
            .unwrap_or(s);
        ms.parse::<u64>().map(SyncPolicy::IntervalMs).map_err(|_| {
            format!("invalid sync policy {s:?}: expected always | interval:<ms> | never")
        })
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::IntervalMs(ms) => write!(f, "interval:{ms}"),
            SyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// Options for [`Store::open`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    pub sync: SyncPolicy,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions {
            sync: SyncPolicy::Always,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_policy_parses_all_spellings() {
        assert_eq!(SyncPolicy::parse("always"), Ok(SyncPolicy::Always));
        assert_eq!(SyncPolicy::parse("never"), Ok(SyncPolicy::Never));
        assert_eq!(
            SyncPolicy::parse("interval:250"),
            Ok(SyncPolicy::IntervalMs(250))
        );
        assert_eq!(
            SyncPolicy::parse("interval_ms:10"),
            Ok(SyncPolicy::IntervalMs(10))
        );
        assert_eq!(SyncPolicy::parse("42"), Ok(SyncPolicy::IntervalMs(42)));
        assert!(SyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn sync_policy_display_roundtrips() {
        for policy in [
            SyncPolicy::Always,
            SyncPolicy::Never,
            SyncPolicy::IntervalMs(7),
        ] {
            assert_eq!(SyncPolicy::parse(&policy.to_string()), Ok(policy));
        }
    }
}
