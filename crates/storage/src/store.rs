//! The store: glue between the manifest, the checkpoint segments, and the
//! active WAL. This is the only module with mutable state; everything it
//! coordinates is written exactly once.
//!
//! ## Directory layout
//!
//! ```text
//! <data-dir>/
//!   MANIFEST            source of truth (atomically replaced)
//!   wal-<gen>.log       the active WAL for manifest generation <gen>
//!   seg-<gen>-<i>.seg   immutable table snapshots named by the manifest
//! ```
//!
//! ## Crash windows
//!
//! Checkpointing performs, in order: write + fsync every segment, rename a
//! new manifest into place (generation+1, `covered_seq` = last appended
//! seq), create the new empty WAL, delete the old WAL and old segments.
//! A crash anywhere in that sequence recovers cleanly:
//!
//! - before the manifest rename → the old manifest still governs; the
//!   half-written segments are unreferenced orphans, deleted on next open;
//! - after the rename, before the new WAL exists → the new manifest
//!   governs; a missing WAL reads as empty and is created on open;
//! - after the rename, before the old files are deleted → the old WAL's
//!   records all have `seq <= covered_seq` and live in a file recovery
//!   never opens; the leftovers are orphans, deleted on next open.
//!
//! Recovery itself mutates nothing until the store is fully constructed
//! (orphan deletion happens last, and deleting an orphan twice is a no-op),
//! so a crash *during recovery* just recovers again.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::crc32::crc32;
use crate::manifest::{
    load_manifest, store_manifest, sync_dir, Manifest, SegmentEntry, MANIFEST_NAME,
    MANIFEST_TMP_NAME,
};
use crate::segment::{read_segment, write_segment};
use crate::wal::{scan_wal, WalRecord, WalWriter};
use crate::{StoreOptions, SyncPolicy};

/// One recovered table snapshot: the opaque payload the application gave
/// [`Store::checkpoint`], handed back verbatim.
#[derive(Debug, Clone)]
pub struct SegmentData {
    pub table: String,
    pub payload: Vec<u8>,
}

/// Everything recovery found, in replay order: apply `segments` first, then
/// `wal_records` (already filtered to `seq > covered_seq`).
#[derive(Debug, Default)]
pub struct Recovered {
    pub segments: Vec<SegmentData>,
    pub wal_records: Vec<WalRecord>,
    /// Application metadata stored at the last checkpoint (empty for a
    /// fresh directory).
    pub meta: Vec<(String, u64)>,
    /// Whether the WAL ended in a torn or corrupt record that was dropped.
    pub torn_tail: bool,
}

/// A point-in-time view of the store for status endpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStatus {
    pub generation: u64,
    pub last_seq: u64,
    pub wal_bytes: u64,
    pub wal_unsynced_bytes: u64,
    pub segments: u64,
}

struct Inner {
    wal: WalWriter,
    next_seq: u64,
    manifest: Manifest,
}

/// A durable record store rooted at one directory. Thread-safe; appends
/// and checkpoints serialize on an internal mutex.
pub struct Store {
    dir: PathBuf,
    sync: SyncPolicy,
    inner: Mutex<Inner>,
}

fn wal_file_name(generation: u64) -> String {
    format!("wal-{generation}.log")
}

impl Store {
    /// Open (or create) the store at `dir`, returning it together with
    /// everything recovery found. Never panics on torn or truncated files;
    /// a corrupt manifest or segment (files that were fully fsynced before
    /// being referenced) is a hard error.
    pub fn open(dir: &Path, options: StoreOptions) -> io::Result<(Store, Recovered)> {
        let t0 = Instant::now();
        std::fs::create_dir_all(dir)?;
        let manifest = load_manifest(dir)?.unwrap_or_default();

        let mut segments = Vec::with_capacity(manifest.segments.len());
        for entry in &manifest.segments {
            let payload = read_segment(&dir.join(&entry.file))?;
            if payload.len() as u64 != entry.len || crc32(&payload) != entry.crc {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("segment {} does not match its manifest entry", entry.file),
                ));
            }
            segments.push(SegmentData {
                table: entry.table.clone(),
                payload,
            });
        }

        let wal_path = dir.join(wal_file_name(manifest.generation));
        let scan = scan_wal(&wal_path)?;
        let wal_records: Vec<WalRecord> = scan
            .records
            .into_iter()
            .filter(|r| r.seq > manifest.covered_seq)
            .collect();
        let last_seq = wal_records
            .last()
            .map(|r| r.seq)
            .unwrap_or(manifest.covered_seq)
            .max(manifest.covered_seq);

        let wal = WalWriter::open(wal_path, scan.valid_len)?;
        sync_dir(dir)?;

        let registry = conquer_obs::registry();
        registry
            .counter("storage.recover.records")
            .add(wal_records.len() as u64);
        registry
            .counter("storage.recover.segments")
            .add(segments.len() as u64);
        registry
            .histogram("storage.recover.replay.us")
            .record(t0.elapsed().as_micros() as u64);

        let store = Store {
            dir: dir.to_path_buf(),
            sync: options.sync,
            inner: Mutex::new(Inner {
                wal,
                next_seq: last_seq + 1,
                manifest: manifest.clone(),
            }),
        };
        store.remove_orphans(&manifest);

        Ok((
            store,
            Recovered {
                segments,
                wal_records,
                meta: manifest.meta,
                torn_tail: scan.torn,
            },
        ))
    }

    /// Delete files in the data directory that the manifest does not
    /// reference: stale WAL generations, unreferenced segments, and a
    /// leftover `MANIFEST.tmp`. Best-effort — an orphan that survives is
    /// garbage, not state.
    fn remove_orphans(&self, manifest: &Manifest) {
        let live_wal = wal_file_name(manifest.generation);
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(_) => return,
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let keep = name == MANIFEST_NAME
                || name == live_wal
                || manifest.segments.iter().any(|s| s.file == name)
                || (!name.starts_with("wal-")
                    && !name.starts_with("seg-")
                    && name != MANIFEST_TMP_NAME);
            if !keep {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// Append one record ahead of applying it, returning its sequence
    /// number. Syncs according to the store's [`SyncPolicy`].
    pub fn append(&self, kind: u8, payload: &[u8]) -> io::Result<u64> {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        let bytes = inner.wal.append(seq, kind, payload)?;
        inner.next_seq += 1;
        let registry = conquer_obs::registry();
        registry.counter("storage.wal.appends").inc();
        registry.counter("storage.wal.append_bytes").add(bytes);
        match self.sync {
            SyncPolicy::Always => inner.wal.sync()?,
            SyncPolicy::IntervalMs(ms) => {
                if inner.wal.millis_since_sync() >= u128::from(ms) {
                    inner.wal.sync()?;
                }
            }
            SyncPolicy::Never => {}
        }
        Ok(seq)
    }

    /// Force an fsync of the WAL regardless of policy (graceful shutdown,
    /// explicit flush).
    pub fn sync(&self) -> io::Result<()> {
        self.lock().wal.sync()
    }

    /// Sync if the interval policy says one is due; no-op otherwise. The
    /// background checkpointer ticks this so `interval_ms` holds even when
    /// no appends arrive.
    pub fn maybe_sync(&self) -> io::Result<()> {
        let mut inner = self.lock();
        if let SyncPolicy::IntervalMs(ms) = self.sync {
            if inner.wal.unsynced_bytes() > 0 && inner.wal.millis_since_sync() >= u128::from(ms) {
                inner.wal.sync()?;
            }
        }
        Ok(())
    }

    /// Bytes in the active WAL (the auto-checkpoint trigger reads this).
    pub fn wal_bytes(&self) -> u64 {
        self.lock().wal.len()
    }

    pub fn status(&self) -> StoreStatus {
        let inner = self.lock();
        StoreStatus {
            generation: inner.manifest.generation,
            last_seq: inner.next_seq.saturating_sub(1),
            wal_bytes: inner.wal.len(),
            wal_unsynced_bytes: inner.wal.unsynced_bytes(),
            segments: inner.manifest.segments.len() as u64,
        }
    }

    /// Write a checkpoint: one immutable segment per `(table, payload)`
    /// pair, a new manifest covering every record appended so far, a fresh
    /// WAL, then deletion of the previous generation's files.
    pub fn checkpoint(
        &self,
        tables: &[(String, Vec<u8>)],
        meta: &[(String, u64)],
    ) -> io::Result<()> {
        let t0 = Instant::now();
        let mut inner = self.lock();
        // Everything logged so far will live inside the segments.
        inner.wal.sync()?;
        let covered_seq = inner.next_seq - 1;
        let generation = inner.manifest.generation + 1;

        let mut entries = Vec::with_capacity(tables.len());
        for (i, (table, payload)) in tables.iter().enumerate() {
            let file = format!("seg-{generation}-{i}.seg");
            write_segment(&self.dir.join(&file), payload)?;
            entries.push(SegmentEntry {
                file,
                table: table.clone(),
                len: payload.len() as u64,
                crc: crc32(payload),
            });
        }
        sync_dir(&self.dir)?;

        let manifest = Manifest {
            generation,
            covered_seq,
            meta: meta.to_vec(),
            segments: entries,
        };
        // The commit point: before this rename the old state governs,
        // after it the new one does.
        store_manifest(&self.dir, &manifest)?;

        let old_wal = inner.wal.path().to_path_buf();
        let wal = WalWriter::open(self.dir.join(wal_file_name(generation)), 0)?;
        sync_dir(&self.dir)?;
        inner.wal = wal;
        inner.manifest = manifest.clone();
        drop(inner);

        let _ = std::fs::remove_file(old_wal);
        self.remove_orphans(&manifest);

        let registry = conquer_obs::registry();
        registry.counter("storage.checkpoints").inc();
        registry
            .histogram("storage.checkpoint.us")
            .record(t0.elapsed().as_micros() as u64);
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> StoreOptions {
        StoreOptions {
            sync: SyncPolicy::Always,
        }
    }

    #[test]
    fn fresh_open_then_reopen_replays_appends() {
        let dir = temp_dir("replay");
        {
            let (store, recovered) = Store::open(&dir, opts()).unwrap();
            assert!(recovered.segments.is_empty());
            assert!(recovered.wal_records.is_empty());
            assert_eq!(store.append(1, b"create t").unwrap(), 1);
            assert_eq!(store.append(2, b"insert t 1").unwrap(), 2);
        }
        let (_store, recovered) = Store::open(&dir, opts()).unwrap();
        assert_eq!(recovered.wal_records.len(), 2);
        assert_eq!(recovered.wal_records[0].payload, b"create t");
        assert_eq!(recovered.wal_records[1].seq, 2);
        assert!(!recovered.torn_tail);
    }

    #[test]
    fn checkpoint_moves_state_into_segments_and_resets_wal() {
        let dir = temp_dir("checkpoint");
        {
            let (store, _) = Store::open(&dir, opts()).unwrap();
            store.append(1, b"create t").unwrap();
            store.append(2, b"insert t").unwrap();
            store
                .checkpoint(
                    &[("t".to_string(), b"snapshot of t".to_vec())],
                    &[("epoch".to_string(), 5)],
                )
                .unwrap();
            // Post-checkpoint appends land in the new WAL.
            store.append(2, b"insert t again").unwrap();
        }
        let (store, recovered) = Store::open(&dir, opts()).unwrap();
        assert_eq!(recovered.segments.len(), 1);
        assert_eq!(recovered.segments[0].table, "t");
        assert_eq!(recovered.segments[0].payload, b"snapshot of t");
        assert_eq!(recovered.meta, vec![("epoch".to_string(), 5)]);
        assert_eq!(recovered.wal_records.len(), 1);
        assert_eq!(recovered.wal_records[0].payload, b"insert t again");
        assert_eq!(recovered.wal_records[0].seq, 3);
        // Sequence numbers continue past the checkpoint after reopen.
        assert_eq!(store.append(1, b"next").unwrap(), 4);
        // Exactly one WAL file (the new generation) remains.
        let wals: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().starts_with("wal-"))
            .collect();
        assert_eq!(wals.len(), 1);
        assert_eq!(wals[0].file_name().to_string_lossy(), "wal-1.log");
    }

    #[test]
    fn crash_between_manifest_rename_and_wal_delete_is_idempotent() {
        let dir = temp_dir("crashwindow");
        {
            let (store, _) = Store::open(&dir, opts()).unwrap();
            store.append(1, b"create t").unwrap();
            store
                .checkpoint(&[("t".to_string(), b"snap".to_vec())], &[])
                .unwrap();
        }
        // Simulate the crash window: resurrect the old WAL file with its
        // already-covered record (as if deletion never happened).
        {
            let mut w = WalWriter::open(dir.join("wal-0.log"), 0).unwrap();
            w.append(1, 1, b"create t").unwrap();
            w.sync().unwrap();
        }
        let (_store, recovered) = Store::open(&dir, opts()).unwrap();
        // The stale generation is ignored entirely and cleaned up.
        assert_eq!(recovered.wal_records.len(), 0);
        assert_eq!(recovered.segments.len(), 1);
        assert!(!dir.join("wal-0.log").exists());
    }

    #[test]
    fn leftover_manifest_tmp_and_orphan_segments_are_cleaned() {
        let dir = temp_dir("orphans");
        {
            let (store, _) = Store::open(&dir, opts()).unwrap();
            store.append(1, b"x").unwrap();
        }
        std::fs::write(dir.join(MANIFEST_TMP_NAME), b"half a manifest").unwrap();
        std::fs::write(dir.join("seg-9-0.seg"), b"unreferenced").unwrap();
        let (_store, recovered) = Store::open(&dir, opts()).unwrap();
        assert_eq!(recovered.wal_records.len(), 1);
        assert!(!dir.join(MANIFEST_TMP_NAME).exists());
        assert!(!dir.join("seg-9-0.seg").exists());
    }

    #[test]
    fn torn_tail_is_dropped_and_overwritten() {
        let dir = temp_dir("torntail");
        {
            let (store, _) = Store::open(&dir, opts()).unwrap();
            store.append(1, b"good").unwrap();
        }
        // Append garbage: a torn record.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join("wal-0.log"))
                .unwrap();
            f.write_all(&[0x55, 0x66, 0x77]).unwrap();
        }
        let (store, recovered) = Store::open(&dir, opts()).unwrap();
        assert!(recovered.torn_tail);
        assert_eq!(recovered.wal_records.len(), 1);
        store.append(1, b"after-torn").unwrap();
        let (_store, recovered) = Store::open(&dir, opts()).unwrap();
        assert!(!recovered.torn_tail);
        assert_eq!(recovered.wal_records.len(), 2);
        assert_eq!(recovered.wal_records[1].payload, b"after-torn");
    }

    #[test]
    fn status_reports_progress() {
        let dir = temp_dir("status");
        let (store, _) = Store::open(&dir, opts()).unwrap();
        store.append(1, b"abc").unwrap();
        let status = store.status();
        assert_eq!(status.generation, 0);
        assert_eq!(status.last_seq, 1);
        assert!(status.wal_bytes > 8);
        store
            .checkpoint(&[("t".to_string(), vec![1, 2, 3])], &[])
            .unwrap();
        let status = store.status();
        assert_eq!(status.generation, 1);
        assert_eq!(status.segments, 1);
    }
}
