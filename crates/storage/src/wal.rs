//! The write-ahead log: an append-only file of length-prefixed, CRC-guarded
//! records, plus the torn-tail-tolerant reader recovery replays.
//!
//! ## On-disk format
//!
//! ```text
//! file   := MAGIC record*
//! MAGIC  := "CQWAL1\0\0"                      (8 bytes)
//! record := len:u32 crc:u32 seq:u64 kind:u8 body:[u8; len-9]
//! ```
//!
//! All integers are little-endian. `len` counts the `seq`/`kind`/`body`
//! bytes; `crc` is the CRC-32 of exactly those bytes, so a record is either
//! wholly valid or wholly rejected — replay can never observe half a
//! mutation. `seq` is a store-wide monotonically increasing sequence number
//! that survives WAL rotation (checkpoints record the last sequence they
//! cover, and replay skips anything at or below it).
//!
//! ## Torn tails
//!
//! [`scan_wal`] stops at the first truncated or checksum-failing record and
//! reports how many bytes of the file were valid. A crash mid-append
//! (partial length prefix, partial body, garbage past a power cut) loses at
//! most that final unsynced record; the writer truncates the file back to
//! the valid length before appending again, so torn bytes never sit in the
//! middle of a live log.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::crc32::crc32;
use crate::fault;

pub(crate) const WAL_MAGIC: &[u8; 8] = b"CQWAL1\0\0";

/// Upper bound on a single record body; anything larger in a length prefix
/// is treated as corruption (stops replay) rather than attempted.
const MAX_RECORD_LEN: u64 = 1 << 31;

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Store-wide sequence number (never reused across rotations).
    pub seq: u64,
    /// Application-defined record type tag.
    pub kind: u8,
    /// Application-defined payload.
    pub payload: Vec<u8>,
}

/// Result of scanning one WAL file: the valid records in order, and the
/// byte length of the valid prefix (where appending may safely resume).
pub(crate) struct WalScan {
    pub records: Vec<WalRecord>,
    pub valid_len: u64,
    /// Whether the scan stopped early on a bad record (torn or corrupt
    /// tail) rather than a clean end-of-file.
    pub torn: bool,
}

/// Read every valid record of a WAL file, stopping (never panicking) at the
/// first torn or corrupt record. A missing file reads as empty.
pub(crate) fn scan_wal(path: &Path) -> io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() {
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn: false,
        });
    }
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // Unrecognized header: treat the whole file as a torn write.
        return Ok(WalScan {
            records: Vec::new(),
            valid_len: 0,
            torn: true,
        });
    }
    let mut records = Vec::new();
    let mut at = WAL_MAGIC.len();
    let mut last_seq = 0u64;
    loop {
        let Some(header) = bytes.get(at..at + 8) else {
            // Clean EOF or a partial length/crc prefix: stop here.
            return Ok(WalScan {
                torn: at != bytes.len(),
                records,
                valid_len: at as u64,
            });
        };
        let len = u64::from(u32::from_le_bytes([
            header[0], header[1], header[2], header[3],
        ]));
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if !(9..=MAX_RECORD_LEN).contains(&len) {
            return Ok(WalScan {
                records,
                valid_len: at as u64,
                torn: true,
            });
        }
        let body_end = at + 8 + len as usize;
        let Some(framed) = bytes.get(at + 8..body_end) else {
            // Truncated mid-record: the torn tail.
            return Ok(WalScan {
                records,
                valid_len: at as u64,
                torn: true,
            });
        };
        if crc32(framed) != crc {
            return Ok(WalScan {
                records,
                valid_len: at as u64,
                torn: true,
            });
        }
        let seq = u64::from_le_bytes([
            framed[0], framed[1], framed[2], framed[3], framed[4], framed[5], framed[6], framed[7],
        ]);
        if seq <= last_seq {
            // Sequence numbers are strictly increasing within a file; a
            // regression means stale bytes from a recycled file.
            return Ok(WalScan {
                records,
                valid_len: at as u64,
                torn: true,
            });
        }
        last_seq = seq;
        records.push(WalRecord {
            seq,
            kind: framed[8],
            payload: framed[9..].to_vec(),
        });
        at = body_end;
    }
}

/// The append half of the WAL: owns the active file handle and the sync
/// policy bookkeeping. Callers serialize appends externally (the store
/// keeps this behind a mutex).
pub(crate) struct WalWriter {
    path: PathBuf,
    file: File,
    /// Bytes in the file (valid prefix at open, grows with appends).
    len: u64,
    /// Bytes appended since the last successful fsync.
    unsynced: u64,
    last_sync: Instant,
}

impl WalWriter {
    /// Open (or create) the WAL at `path` for appending, truncating any
    /// torn tail back to `valid_len` first.
    pub fn open(path: PathBuf, valid_len: u64) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut len = valid_len;
        if len == 0 {
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            file.sync_all()?;
            len = WAL_MAGIC.len() as u64;
        } else {
            // Drop any torn tail so appends resume on a record boundary.
            file.set_len(len)?;
        }
        file.seek(SeekFrom::Start(len))?;
        Ok(WalWriter {
            path,
            file,
            len,
            unsynced: 0,
            last_sync: Instant::now(),
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced
    }

    /// Append one record (assembled and CRC-stamped here) and return the
    /// bytes written. The caller decides when to [`sync`](WalWriter::sync).
    pub fn append(&mut self, seq: u64, kind: u8, payload: &[u8]) -> io::Result<u64> {
        fault::trip("wal_append_io")?;
        let len = 9 + payload.len();
        let mut buf = Vec::with_capacity(8 + len);
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]); // crc placeholder
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(payload);
        let crc = crc32(&buf[8..]);
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&buf)?;
        self.len += buf.len() as u64;
        self.unsynced += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// fsync the file, recording the fsync latency in the obs registry.
    pub fn sync(&mut self) -> io::Result<()> {
        fault::trip("wal_sync_fail")?;
        if self.unsynced == 0 {
            return Ok(());
        }
        let t0 = Instant::now();
        self.file.sync_data()?;
        conquer_obs::registry()
            .histogram("storage.wal.fsync.us")
            .record(t0.elapsed().as_micros() as u64);
        conquer_obs::registry().counter("storage.wal.syncs").inc();
        self.unsynced = 0;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Milliseconds since the last successful fsync (for interval sync).
    pub fn millis_since_sync(&self) -> u128 {
        self.last_sync.elapsed().as_millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("conquer-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-0.log")
    }

    #[test]
    fn append_and_scan_roundtrip() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::open(path.clone(), 0).unwrap();
        w.append(1, 7, b"hello").unwrap();
        w.append(2, 9, b"").unwrap();
        w.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[0].seq, 1);
        assert_eq!(scan.records[0].kind, 7);
        assert_eq!(scan.records[0].payload, b"hello");
        assert_eq!(scan.records[1].seq, 2);
        assert_eq!(scan.valid_len, std::fs::metadata(&path).unwrap().len());
    }

    #[test]
    fn torn_tail_stops_cleanly_at_every_truncation() {
        let path = temp_path("torn");
        let mut w = WalWriter::open(path.clone(), 0).unwrap();
        w.append(1, 1, b"first-record").unwrap();
        w.append(2, 1, b"second-record").unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            // Only complete records survive, in prefix order.
            assert!(scan.records.len() <= 2);
            for (i, r) in scan.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1);
            }
            assert!(scan.valid_len <= cut as u64);
        }
    }

    #[test]
    fn corrupt_byte_never_yields_a_partial_record() {
        let path = temp_path("corrupt");
        let mut w = WalWriter::open(path.clone(), 0).unwrap();
        w.append(1, 1, b"first-record").unwrap();
        w.append(2, 1, b"second-record").unwrap();
        w.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        for i in 0..full.len() {
            let mut mutated = full.clone();
            mutated[i] ^= 0xFF;
            std::fs::write(&path, &mutated).unwrap();
            let scan = scan_wal(&path).unwrap();
            for r in &scan.records {
                // Any surviving record must be byte-identical to an original.
                assert!(r.payload == b"first-record" || r.payload == b"second-record");
            }
        }
    }

    #[test]
    fn reopen_truncates_torn_tail_and_appends() {
        let path = temp_path("reopen");
        let mut w = WalWriter::open(path.clone(), 0).unwrap();
        w.append(1, 1, b"keep").unwrap();
        w.sync().unwrap();
        drop(w);
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0x17, 0x00, 0x00]);
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(scan.torn);
        let mut w = WalWriter::open(path.clone(), scan.valid_len).unwrap();
        w.append(2, 1, b"after").unwrap();
        w.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert!(!scan.torn);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].payload, b"after");
    }
}
