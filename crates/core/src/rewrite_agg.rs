//! `RewriteAgg` (Figure 8 of the paper): range-consistent query answers for
//! tree queries with grouping and aggregation (Definition 5).
//!
//! For each group value that is a *consistent* answer of `q_G` (the query
//! with aggregates removed), the rewriting returns the tight `[min, max]`
//! range the aggregate takes across all repairs:
//!
//! * `UnFilteredCandidates` — root keys never filtered by `q_G`'s Filter
//!   contribute their per-key `[min(e), max(e)]` to both bounds;
//! * `FilteredCandidates` — filtered keys may be absent from a repair, so
//!   for `SUM` they contribute `[min(min(e), 0), max(max(e), 0)]` — the
//!   paper's CASE expressions, correct for negative values (Example 8).
//!
//! Following Section 6.1 ("running times improve considerably when the
//! results of these subexpressions are temporarily stored rather than
//! computed several times"), the expensive common subexpression — the
//! original query's satisfying rows — is factored into a `conq_base` CTE
//! that the candidates and both bound queries read, so the base relations
//! are scanned once rather than three times.
//!
//! Aggregate support: `SUM`, `MIN`, `MAX` (Theorem 2), plus `COUNT(*)` and
//! `COUNT(e)` (exact, via 0/1 contributions) and `AVG` (sound but not tight
//! bounds, assuming non-negative data) as documented extensions.
//!
//! Output shape: for an input item `agg(e) AS x`, the rewriting emits two
//! columns `min_x` and `max_x` adjacent in the original projection order.

use conquer_sql::ast::{
    BinaryOp, ColumnRef, Cte, Expr, Literal, OrderByItem, Query, Select, SelectItem, SetExpr,
    TableRef,
};

use crate::analyze::{AggKind, ProjItem, TreeQuery};
use crate::error::{Result, RewriteError};
use crate::rewrite_join::{
    build_filter, choose_item_aliases, not_exists_filter, original_from, original_where,
    RewriteOptions, CONS_COLUMN,
};

const BASE: &str = "conq_base";
const QG_CANDIDATES: &str = "conq_qg_candidates";
const QG_FILTER: &str = "conq_qg_filter";
const QG_CONS: &str = "conq_qg_cons";
const UNFILTERED: &str = "conq_unfiltered";
const FILTERED: &str = "conq_filtered";
const BASE_BINDING: &str = "conq_b";
const CAND_BINDING: &str = "conq_cand";
const FILTER_BINDING: &str = "conq_f";
const CONS_BINDING: &str = "conq_g";
const UNION_BINDING: &str = "conq_u";
const CONSCAND: &str = "conq_conscand";
const VIOL: &str = "conq_viol";

/// Rewrite a tree query with aggregation into a query computing its
/// range-consistent answers (Theorem 2).
pub fn rewrite_agg(tq: &TreeQuery, opts: &RewriteOptions) -> Result<Query> {
    if !tq.has_aggregates() {
        return Err(RewriteError::Unsupported(
            "RewriteAgg applies to queries with aggregation; use rewrite() to dispatch".into(),
        ));
    }
    if tq
        .projection
        .iter()
        .all(|p| matches!(p, ProjItem::Plain { .. }))
    {
        // GROUP BY without aggregates: the grouped attributes are the whole
        // answer, i.e. `q_G` itself — rewrite as a join query on DISTINCT.
        let mut set_query = tq.clone();
        set_query.distinct = true;
        set_query.group_by = Vec::new();
        return crate::rewrite_join::rewrite_join(&set_query, opts);
    }

    // --- q_G and naming -----------------------------------------------------
    let qg = build_qg(tq);
    let key_aliases: Vec<String> = (1..=tq.relations[tq.root].key.len())
        .map(|i| format!("conq_k{i}"))
        .collect();
    let g_aliases = choose_item_aliases(&qg);
    check_unique(&g_aliases)?;

    let agg_items: Vec<(usize, AggKind, Option<&Expr>, &str)> = tq
        .projection
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            ProjItem::Aggregate { kind, arg, name } => {
                Some((i, *kind, arg.as_ref(), name.as_str()))
            }
            ProjItem::Plain { .. } => None,
        })
        .collect();

    // --- conq_base: the original query's satisfying rows, scanned once ------
    let mut ctes = vec![Cte {
        name: BASE.to_string(),
        query: Query::from_select(base_select(tq, opts, &key_aliases, &g_aliases, &agg_items)),
    }];

    // --- qg_candidates over the base ----------------------------------------
    ctes.push(Cte {
        name: QG_CANDIDATES.to_string(),
        query: Query::from_select(candidates_from_base(opts, &key_aliases, &g_aliases)),
    });

    // --- qg_filter (joins candidates back to the raw relations) --------------
    let filter_body = build_filter(&qg, opts, QG_CANDIDATES, &key_aliases)?;
    let has_filter = filter_body.is_some();
    if let Some(body) = filter_body {
        ctes.push(Cte {
            name: QG_FILTER.to_string(),
            query: Query {
                ctes: Vec::new(),
                body,
                order_by: Vec::new(),
                limit: None,
            },
        });
    }

    // --- QGCons: the consistent answers of q_G -------------------------------
    let needs_qg_cons = has_filter && !tq.group_by.is_empty();
    if needs_qg_cons {
        let projection = qg
            .projection
            .iter()
            .zip(&g_aliases)
            .map(|(item, alias)| {
                SelectItem::aliased(Expr::col(CAND_BINDING, alias.clone()), item.name())
            })
            .collect();
        ctes.push(Cte {
            name: QG_CONS.to_string(),
            query: Query::from_select(Select {
                distinct: true,
                projection,
                from: vec![TableRef::aliased(QG_CANDIDATES, CAND_BINDING)],
                selection: Some(not_exists_filter(QG_FILTER, &key_aliases)),
                group_by: Vec::new(),
                having: None,
            }),
        });
    }

    // --- UnFiltered / Filtered candidates over the base ----------------------
    let inner_select = |filtered: bool| -> Select {
        let mut projection = Vec::new();
        for alias in key_aliases.iter().chain(&g_aliases) {
            projection.push(SelectItem::aliased(
                Expr::col(BASE_BINDING, alias.clone()),
                alias.clone(),
            ));
        }
        for (i, kind, _, _) in &agg_items {
            projection.extend(inner_agg_columns(*i, *kind, filtered));
        }

        let mut conjuncts: Vec<Expr> = Vec::new();
        if has_filter {
            conjuncts.push(key_filter_exists(&key_aliases, filtered));
        }
        if filtered && needs_qg_cons {
            conjuncts.push(group_cons_exists(&qg, &g_aliases));
        }
        let group_by: Vec<Expr> = key_aliases
            .iter()
            .chain(&g_aliases)
            .map(|a| Expr::col(BASE_BINDING, a.clone()))
            .collect();
        Select {
            distinct: false,
            projection,
            from: vec![TableRef::aliased(BASE, BASE_BINDING)],
            selection: Expr::conjoin(conjuncts),
            group_by,
            having: None,
        }
    };

    ctes.push(Cte {
        name: UNFILTERED.to_string(),
        query: Query::from_select(inner_select(false)),
    });
    if has_filter {
        ctes.push(Cte {
            name: FILTERED.to_string(),
            query: Query::from_select(inner_select(true)),
        });
    }

    // --- final aggregation over the union -----------------------------------
    let union_body = if has_filter {
        SetExpr::UnionAll(
            Box::new(select_star_from(UNFILTERED)),
            Box::new(select_star_from(FILTERED)),
        )
    } else {
        select_star_from(UNFILTERED)
    };
    let union_ref = TableRef::Subquery {
        query: Box::new(Query {
            ctes: Vec::new(),
            body: union_body,
            order_by: Vec::new(),
            limit: None,
        }),
        alias: UNION_BINDING.to_string(),
    };

    let mut projection = Vec::new();
    let mut g_iter = g_aliases.iter();
    for item in &tq.projection {
        match item {
            ProjItem::Plain { name, .. } => {
                let alias = g_iter.next().expect("plain items are grouped attributes");
                projection.push(SelectItem::aliased(
                    Expr::col(UNION_BINDING, alias.clone()),
                    name.clone(),
                ));
            }
            ProjItem::Aggregate { kind, name, .. } => {
                let idx = agg_items
                    .iter()
                    .find(|(_, _, _, n)| n == name)
                    .expect("aggregate item present")
                    .0;
                let (min_expr, max_expr) = outer_agg_exprs(idx, *kind);
                projection.push(SelectItem::aliased(min_expr, format!("min_{name}")));
                projection.push(SelectItem::aliased(max_expr, format!("max_{name}")));
            }
        }
    }
    let group_by: Vec<Expr> = g_aliases
        .iter()
        .map(|a| Expr::col(UNION_BINDING, a.clone()))
        .collect();

    let final_select = Select {
        distinct: false,
        projection,
        from: vec![union_ref],
        selection: None,
        group_by,
        having: None,
    };

    let order_by = map_order_by(tq)?;
    Ok(Query {
        ctes,
        body: SetExpr::Select(Box::new(final_select)),
        order_by,
        limit: tq.limit,
    })
}

/// `q_G`: the original query with aggregate expressions removed and the
/// grouped attributes projected under set semantics.
fn build_qg(tq: &TreeQuery) -> TreeQuery {
    let mut qg = tq.clone();
    qg.projection = tq
        .group_by
        .iter()
        .map(|c| ProjItem::Plain {
            expr: Expr::Column(c.clone()),
            name: c.name.clone(),
        })
        .collect();
    qg.group_by = Vec::new();
    qg.distinct = true;
    qg.order_by = Vec::new();
    qg.limit = None;
    qg
}

fn check_unique(aliases: &[String]) -> Result<()> {
    for (i, a) in aliases.iter().enumerate() {
        if aliases[..i].contains(a) {
            return Err(RewriteError::Unsupported(format!(
                "two grouped attributes share the output name `{a}`; alias one of them"
            )));
        }
    }
    Ok(())
}

/// The shared base CTE: root keys, grouped attributes, per-aggregate
/// effective expressions, and (annotated) the per-row violation flag, over
/// the original FROM/WHERE.
fn base_select(
    tq: &TreeQuery,
    opts: &RewriteOptions,
    key_aliases: &[String],
    g_aliases: &[String],
    agg_items: &[(usize, AggKind, Option<&Expr>, &str)],
) -> Select {
    let mut projection = Vec::new();
    for (col, alias) in tq.root_key_columns().iter().zip(key_aliases) {
        projection.push(SelectItem::aliased(
            Expr::Column(col.clone()),
            alias.clone(),
        ));
    }
    for (g, alias) in tq.group_by.iter().zip(g_aliases) {
        projection.push(SelectItem::aliased(Expr::Column(g.clone()), alias.clone()));
    }
    for (i, kind, arg, _) in agg_items {
        match kind {
            AggKind::Sum | AggKind::Count | AggKind::CountStar => {
                projection.push(SelectItem::aliased(
                    sum_effective(*kind, *arg),
                    format!("conq_e{i}"),
                ));
            }
            AggKind::Min | AggKind::Max => {
                projection.push(SelectItem::aliased(
                    (*arg).expect("min/max arg").clone(),
                    format!("conq_e{i}"),
                ));
            }
            AggKind::Avg => {
                let e = (*arg).expect("avg arg").clone();
                projection.push(SelectItem::aliased(
                    Expr::func("coalesce", vec![e.clone(), Expr::int(0)]),
                    format!("conq_es{i}"),
                ));
                projection.push(SelectItem::aliased(
                    Expr::Case {
                        branches: vec![(
                            Expr::IsNull {
                                expr: Box::new(e),
                                negated: false,
                            },
                            Expr::int(0),
                        )],
                        else_expr: Some(Box::new(Expr::int(1))),
                    },
                    format!("conq_ec{i}"),
                ));
            }
        }
    }
    if opts.annotated {
        let any_inconsistent = Expr::disjoin(
            tq.relations
                .iter()
                .map(|r| Expr::eq(Expr::col(r.binding.clone(), CONS_COLUMN), Expr::string("n"))),
        )
        .expect("at least one relation");
        projection.push(SelectItem::aliased(
            Expr::Case {
                branches: vec![(any_inconsistent, Expr::int(1))],
                else_expr: Some(Box::new(Expr::int(0))),
            },
            VIOL,
        ));
    }
    Select {
        distinct: false,
        projection,
        from: original_from(tq),
        selection: original_where(tq),
        group_by: Vec::new(),
        having: None,
    }
}

/// `q_G`'s Candidates, read from the base CTE: DISTINCT key+group rows, or
/// the grouped variant with the `conscand` counter for annotated databases.
fn candidates_from_base(
    opts: &RewriteOptions,
    key_aliases: &[String],
    g_aliases: &[String],
) -> Select {
    let mut projection: Vec<SelectItem> = key_aliases
        .iter()
        .chain(g_aliases)
        .map(|a| SelectItem::aliased(Expr::col(BASE_BINDING, a.clone()), a.clone()))
        .collect();
    if !opts.annotated {
        return Select {
            distinct: true,
            projection,
            from: vec![TableRef::aliased(BASE, BASE_BINDING)],
            selection: None,
            group_by: Vec::new(),
            having: None,
        };
    }
    projection.push(SelectItem::aliased(
        Expr::func("sum", vec![Expr::col(BASE_BINDING, VIOL)]),
        CONSCAND,
    ));
    let group_by: Vec<Expr> = key_aliases
        .iter()
        .chain(g_aliases)
        .map(|a| Expr::col(BASE_BINDING, a.clone()))
        .collect();
    Select {
        distinct: false,
        projection,
        from: vec![TableRef::aliased(BASE, BASE_BINDING)],
        selection: None,
        group_by,
        having: None,
    }
}

/// `[NOT] EXISTS (SELECT * FROM conq_qg_filter f WHERE b.k1 = f.conq_k1 ...)`.
fn key_filter_exists(key_aliases: &[String], positive: bool) -> Expr {
    let on = Expr::conjoin(key_aliases.iter().map(|alias| {
        Expr::eq(
            Expr::col(BASE_BINDING, alias.clone()),
            Expr::col(FILTER_BINDING, alias.clone()),
        )
    }))
    .expect("keys are non-empty");
    let subquery = Query::from_select(Select {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: vec![TableRef::aliased(QG_FILTER, FILTER_BINDING)],
        selection: Some(on),
        group_by: Vec::new(),
        having: None,
    });
    if positive {
        Expr::exists(subquery)
    } else {
        Expr::not_exists(subquery)
    }
}

/// `EXISTS (SELECT * FROM conq_qg_cons g WHERE g.<name> = b.<galias> ...)`:
/// only groups that are consistent answers of `q_G` receive ranges.
fn group_cons_exists(qg: &TreeQuery, g_aliases: &[String]) -> Expr {
    let on = Expr::conjoin(qg.projection.iter().zip(g_aliases).map(|(item, alias)| {
        Expr::eq(
            Expr::col(CONS_BINDING, item.name().to_string()),
            Expr::col(BASE_BINDING, alias.clone()),
        )
    }))
    .expect("grouped attributes are non-empty");
    Expr::exists(Query::from_select(Select {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: vec![TableRef::aliased(QG_CONS, CONS_BINDING)],
        selection: Some(on),
        group_by: Vec::new(),
        having: None,
    }))
}

fn select_star_from(name: &str) -> SetExpr {
    SetExpr::Select(Box::new(Select {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: vec![TableRef::table(name)],
        selection: None,
        group_by: Vec::new(),
        having: None,
    }))
}

fn agg(name: &str, arg: Expr) -> Expr {
    Expr::func(name, vec![arg])
}

fn base_col(name: String) -> Expr {
    Expr::col(BASE_BINDING, name)
}

/// `CASE WHEN e > 0 THEN 0 ELSE e END` (Figure 8's lower bound for SUM).
fn case_min_zero(e: Expr) -> Expr {
    Expr::Case {
        branches: vec![(
            Expr::binary(e.clone(), BinaryOp::Gt, Expr::int(0)),
            Expr::int(0),
        )],
        else_expr: Some(Box::new(e)),
    }
}

/// `CASE WHEN e > 0 THEN e ELSE 0 END` (Figure 8's upper bound for SUM).
fn case_max_zero(e: Expr) -> Expr {
    Expr::Case {
        branches: vec![(Expr::binary(e.clone(), BinaryOp::Gt, Expr::int(0)), e)],
        else_expr: Some(Box::new(Expr::int(0))),
    }
}

/// The effective summed expression for SUM-like aggregates: `COALESCE(e, 0)`
/// so that NULL arguments contribute nothing (matching SQL's NULL-skipping
/// SUM), `1` for `COUNT(*)`, and a 0/1 indicator for `COUNT(e)`.
fn sum_effective(kind: AggKind, arg: Option<&Expr>) -> Expr {
    match kind {
        AggKind::CountStar => Expr::int(1),
        AggKind::Count => Expr::Case {
            branches: vec![(
                Expr::IsNull {
                    expr: Box::new(arg.expect("count arg").clone()),
                    negated: false,
                },
                Expr::int(0),
            )],
            else_expr: Some(Box::new(Expr::int(1))),
        },
        _ => Expr::func(
            "coalesce",
            vec![arg.expect("agg arg").clone(), Expr::int(0)],
        ),
    }
}

/// Per-key bound columns inside UnFiltered/FilteredCandidates for one
/// aggregate item, reading the effective expressions from the base CTE.
fn inner_agg_columns(i: usize, kind: AggKind, filtered: bool) -> Vec<SelectItem> {
    let min_alias = format!("conq_min{i}");
    let max_alias = format!("conq_max{i}");
    let null_lit = || Expr::Literal(Literal::Null);
    match kind {
        AggKind::Sum | AggKind::CountStar | AggKind::Count => {
            let e = base_col(format!("conq_e{i}"));
            let (lo, hi) = if filtered {
                (
                    case_min_zero(agg("min", e.clone())),
                    case_max_zero(agg("max", e)),
                )
            } else {
                (agg("min", e.clone()), agg("max", e))
            };
            vec![
                SelectItem::aliased(lo, min_alias),
                SelectItem::aliased(hi, max_alias),
            ]
        }
        AggKind::Min => {
            let e = base_col(format!("conq_e{i}"));
            let hi = if filtered {
                null_lit()
            } else {
                agg("max", e.clone())
            };
            vec![
                SelectItem::aliased(agg("min", e), min_alias),
                SelectItem::aliased(hi, max_alias),
            ]
        }
        AggKind::Max => {
            let e = base_col(format!("conq_e{i}"));
            let lo = if filtered {
                null_lit()
            } else {
                agg("min", e.clone())
            };
            vec![
                SelectItem::aliased(lo, min_alias),
                SelectItem::aliased(agg("max", e), max_alias),
            ]
        }
        AggKind::Avg => {
            let s = base_col(format!("conq_es{i}"));
            let c = base_col(format!("conq_ec{i}"));
            let (smin, smax) = if filtered {
                (
                    case_min_zero(agg("min", s.clone())),
                    case_max_zero(agg("max", s)),
                )
            } else {
                (agg("min", s.clone()), agg("max", s))
            };
            let (cmin, cmax) = if filtered {
                (Expr::int(0), agg("max", c))
            } else {
                (agg("min", c.clone()), agg("max", c))
            };
            vec![
                SelectItem::aliased(smin, format!("conq_smin{i}")),
                SelectItem::aliased(smax, format!("conq_smax{i}")),
                SelectItem::aliased(cmin, format!("conq_cmin{i}")),
                SelectItem::aliased(cmax, format!("conq_cmax{i}")),
            ]
        }
    }
}

/// The outer aggregation over per-key bounds for one aggregate item:
/// `(lower-bound expression, upper-bound expression)`.
fn outer_agg_exprs(i: usize, kind: AggKind) -> (Expr, Expr) {
    let u = |name: String| Expr::col(UNION_BINDING, name);
    match kind {
        AggKind::Sum | AggKind::CountStar | AggKind::Count => (
            agg("sum", u(format!("conq_min{i}"))),
            agg("sum", u(format!("conq_max{i}"))),
        ),
        AggKind::Min => (
            agg("min", u(format!("conq_min{i}"))),
            agg("min", u(format!("conq_max{i}"))),
        ),
        AggKind::Max => (
            agg("max", u(format!("conq_min{i}"))),
            agg("max", u(format!("conq_max{i}"))),
        ),
        AggKind::Avg => {
            // `* 1.0` forces float division even over integer columns.
            let float =
                |e: Expr| Expr::binary(e, BinaryOp::Multiply, Expr::Literal(Literal::Float(1.0)));
            let smin = float(agg("sum", u(format!("conq_smin{i}"))));
            let smax = float(agg("sum", u(format!("conq_smax{i}"))));
            let cmin = agg("sum", u(format!("conq_cmin{i}")));
            let cmax = agg("sum", u(format!("conq_cmax{i}")));
            let lo = Expr::Case {
                branches: vec![(
                    Expr::binary(cmax.clone(), BinaryOp::Gt, Expr::int(0)),
                    Expr::binary(smin, BinaryOp::Divide, cmax.clone()),
                )],
                else_expr: None,
            };
            let hi = Expr::Case {
                branches: vec![(
                    Expr::binary(cmax, BinaryOp::Gt, Expr::int(0)),
                    Expr::binary(
                        smax,
                        BinaryOp::Divide,
                        Expr::func("greatest", vec![cmin, Expr::int(1)]),
                    ),
                )],
                else_expr: None,
            };
            (lo, hi)
        }
    }
}

/// Map the original ORDER BY to the new output layout: a reference to an
/// aggregate output name becomes its `min_` column; positional references
/// are re-indexed across the min/max expansion.
fn map_order_by(tq: &TreeQuery) -> Result<Vec<OrderByItem>> {
    // New start position (1-based) of each original projection item.
    let mut starts = Vec::new();
    let mut pos = 1u64;
    for item in &tq.projection {
        starts.push(pos);
        pos += match item {
            ProjItem::Plain { .. } => 1,
            ProjItem::Aggregate { .. } => 2,
        };
    }
    let mut out = Vec::new();
    for item in &tq.order_by {
        let expr = match &item.expr {
            Expr::Literal(Literal::Integer(k)) => {
                let idx = usize::try_from(*k - 1)
                    .ok()
                    .filter(|i| *i < starts.len())
                    .ok_or_else(|| {
                        RewriteError::Unsupported(format!("ORDER BY position {k} out of range"))
                    })?;
                Expr::Literal(Literal::Integer(starts[idx] as i64))
            }
            Expr::Column(c) => map_order_column(tq, c),
            other => other.clone(),
        };
        out.push(OrderByItem {
            expr,
            desc: item.desc,
        });
    }
    Ok(out)
}

fn map_order_column(tq: &TreeQuery, c: &ColumnRef) -> Expr {
    for item in &tq.projection {
        if item.name() == c.name {
            return match item {
                ProjItem::Aggregate { .. } => Expr::bare_col(format!("min_{}", c.name)),
                ProjItem::Plain { .. } => Expr::bare_col(c.name.clone()),
            };
        }
    }
    Expr::Column(c.clone())
}
