//! `RewriteJoin` (Figure 5 of the paper): the SQL-to-SQL rewriting for tree
//! queries without aggregation, including the annotation-aware variant of
//! Section 5.
//!
//! The rewriting produces:
//!
//! ```sql
//! WITH conq_candidates AS (
//!   SELECT DISTINCT Kroot, S FROM ... WHERE KJ AND NKJ AND SC),
//! conq_filter AS (
//!   SELECT Kroot FROM conq_candidates
//!   JOIN Rroot ON ... [JOIN co-roots ON KJ]
//!   LEFT OUTER JOIN ... (Figure 6's LOJ, in BFS order)
//!   WHERE R1.K1 IS NULL OR ... OR NSC
//!   UNION ALL
//!   SELECT Kroot FROM conq_candidates GROUP BY Kroot HAVING COUNT(*) > 1)
//! SELECT S FROM conq_candidates
//! WHERE NOT EXISTS (SELECT * FROM conq_filter F WHERE ...)
//! ```
//!
//! The `COUNT(*) > 1` branch is emitted only when the projection reaches
//! beyond the root key (Example 4 vs Example 3), and the whole filter is
//! omitted for queries that nothing can filter (key-only projections with
//! no selections and no outer joins).

use conquer_sql::ast::{
    BinaryOp, ColumnRef, Cte, Expr, Literal, Query, Select, SelectItem, SetExpr, TableRef,
};

use crate::analyze::{ProjItem, TreeQuery};
use crate::error::{Result, RewriteError};

/// Name of the annotation column added by [`crate::annotations`].
pub const CONS_COLUMN: &str = "cons";

/// Generated-name prefixes; input queries should avoid `conq_`-prefixed
/// bindings and the rewriting never collides with anything else.
pub const CANDIDATES_CTE: &str = "conq_candidates";
pub const FILTER_CTE: &str = "conq_filter";
const CAND_BINDING: &str = "conq_cand";
const FILTER_BINDING: &str = "conq_f";
const CONSCAND: &str = "conq_conscand";

/// Options controlling the rewriting.
#[derive(Debug, Clone, Copy, Default)]
pub struct RewriteOptions {
    /// Use the annotation-aware rewriting of Section 5, which assumes every
    /// relation carries a `cons` column (`'y'`/`'n'`) produced by
    /// [`crate::annotations::annotate_database`].
    pub annotated: bool,
    /// Emit the paper's literal negations (`acctbal <= 1000` for
    /// `acctbal > 1000`). The default emits NULL-safe negations
    /// (`NOT COALESCE(cond, FALSE)`), which additionally filter keys whose
    /// tuples make a selection condition *unknown* — base-table NULLs make
    /// such tuples fail the query in the repairs that choose them, so they
    /// must be filtered for correctness.
    pub paper_style_negation: bool,
}

/// The reusable pieces of a join rewriting; `RewriteAgg` embeds these.
pub(crate) struct JoinRewriteParts {
    pub candidates: Cte,
    pub filter: Option<Cte>,
    /// Aliases of the root-key columns inside the candidates CTE.
    pub key_aliases: Vec<String>,
    /// Aliases of the projected items inside the candidates CTE, parallel
    /// to `tq.projection`.
    pub item_aliases: Vec<String>,
}

/// Rewrite a tree query without aggregation into a query computing its
/// consistent answers (Theorem 1).
pub fn rewrite_join(tq: &TreeQuery, opts: &RewriteOptions) -> Result<Query> {
    if tq.has_aggregates() {
        return Err(RewriteError::Unsupported(
            "RewriteJoin applies to queries without aggregation; use rewrite() to dispatch".into(),
        ));
    }
    let parts = build_parts(tq, opts, CANDIDATES_CTE, FILTER_CTE)?;

    let projection = tq
        .projection
        .iter()
        .zip(&parts.item_aliases)
        .map(|(item, alias)| {
            SelectItem::aliased(Expr::col(CAND_BINDING, alias.clone()), item.name())
        })
        .collect();
    let selection = parts
        .filter
        .as_ref()
        .map(|f| not_exists_filter(&f.name, &parts.key_aliases));

    let mut ctes = vec![parts.candidates];
    ctes.extend(parts.filter);
    Ok(Query {
        ctes,
        body: SetExpr::Select(Box::new(Select {
            distinct: tq.distinct,
            projection,
            from: vec![TableRef::aliased(CANDIDATES_CTE, CAND_BINDING)],
            selection,
            group_by: Vec::new(),
            having: None,
        })),
        order_by: tq.order_by.clone(),
        limit: tq.limit,
    })
}

/// Build the Candidates and Filter CTEs for a tree query. Shared between
/// `RewriteJoin` and `RewriteAgg` (which applies it to `q_G`).
pub(crate) fn build_parts(
    tq: &TreeQuery,
    opts: &RewriteOptions,
    cand_name: &str,
    filter_name: &str,
) -> Result<JoinRewriteParts> {
    for item in &tq.projection {
        if matches!(item, ProjItem::Aggregate { .. }) {
            return Err(RewriteError::Unsupported(
                "aggregates inside the join rewriting".into(),
            ));
        }
    }
    let key_aliases: Vec<String> = (1..=tq.relations[tq.root].key.len())
        .map(|i| format!("conq_k{i}"))
        .collect();
    let item_aliases = choose_item_aliases(tq);

    let candidates = Cte {
        name: cand_name.to_string(),
        query: Query::from_select(candidates_select(tq, opts, &key_aliases, &item_aliases)),
    };

    let filter = build_filter(tq, opts, cand_name, &key_aliases)?.map(|body| Cte {
        name: filter_name.to_string(),
        query: Query {
            ctes: Vec::new(),
            body,
            order_by: Vec::new(),
            limit: None,
        },
    });

    Ok(JoinRewriteParts {
        candidates,
        filter,
        key_aliases,
        item_aliases,
    })
}

/// Pick collision-free aliases for projected items inside the candidates
/// CTE: the output name when it is safe and unique, `conq_s{i}` otherwise.
pub(crate) fn choose_item_aliases(tq: &TreeQuery) -> Vec<String> {
    let mut aliases: Vec<String> = Vec::new();
    for (i, item) in tq.projection.iter().enumerate() {
        let name = item.name().to_ascii_lowercase();
        let safe = !name.starts_with("conq_")
            && !aliases.contains(&name)
            && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        aliases.push(if safe {
            name
        } else {
            format!("conq_s{}", i + 1)
        });
    }
    aliases
}

/// The original query's FROM clause, reconstructed as a comma list.
pub(crate) fn original_from(tq: &TreeQuery) -> Vec<TableRef> {
    tq.relations
        .iter()
        .map(|r| {
            if r.binding == r.table {
                TableRef::table(r.table.clone())
            } else {
                TableRef::aliased(r.table.clone(), r.binding.clone())
            }
        })
        .collect()
}

/// The original query's WHERE clause: joins plus selections.
pub(crate) fn original_where(tq: &TreeQuery) -> Option<Expr> {
    Expr::conjoin(tq.join_conjuncts.iter().chain(&tq.selection).cloned())
}

/// The `Candidates` select block: the original query with DISTINCT and the
/// root-key attributes added (Figure 5), or the grouped variant with the
/// `conscand` counter for annotated databases (Section 5).
fn candidates_select(
    tq: &TreeQuery,
    opts: &RewriteOptions,
    key_aliases: &[String],
    item_aliases: &[String],
) -> Select {
    let root = &tq.relations[tq.root];
    let key_items: Vec<(Expr, &String)> = root
        .key
        .iter()
        .zip(key_aliases)
        .map(|(k, alias)| (Expr::col(root.binding.clone(), k.clone()), alias))
        .collect();

    let mut projection = Vec::new();
    for (expr, alias) in &key_items {
        projection.push(SelectItem::aliased(expr.clone(), (*alias).clone()));
    }
    let mut item_exprs = Vec::new();
    for (item, alias) in tq.projection.iter().zip(item_aliases) {
        let ProjItem::Plain { expr, .. } = item else {
            unreachable!("checked in build_parts")
        };
        projection.push(SelectItem::aliased(expr.clone(), alias.clone()));
        item_exprs.push(expr.clone());
    }

    if !opts.annotated {
        return Select {
            distinct: true,
            projection,
            from: original_from(tq),
            selection: original_where(tq),
            group_by: Vec::new(),
            having: None,
        };
    }

    // Annotation-aware: count how many source tuple combinations involve a
    // possibly-inconsistent tuple; a zero count proves the candidate
    // consistent so the filter can skip it (Example 9).
    let any_inconsistent = Expr::disjoin(
        tq.relations
            .iter()
            .map(|r| Expr::eq(Expr::col(r.binding.clone(), CONS_COLUMN), Expr::string("n"))),
    )
    .expect("at least one relation");
    let conscand = Expr::func(
        "sum",
        vec![Expr::Case {
            branches: vec![(any_inconsistent, Expr::int(1))],
            else_expr: Some(Box::new(Expr::int(0))),
        }],
    );
    projection.push(SelectItem::aliased(conscand, CONSCAND));

    let mut group_by: Vec<Expr> = key_items.into_iter().map(|(e, _)| e).collect();
    group_by.extend(item_exprs);
    Select {
        distinct: false,
        projection,
        from: original_from(tq),
        selection: original_where(tq),
        group_by,
        having: None,
    }
}

/// Build the Filter body: the outer-join branch plus the multiplicity
/// branch, either of which may be unnecessary.
pub(crate) fn build_filter(
    tq: &TreeQuery,
    opts: &RewriteOptions,
    cand_name: &str,
    key_aliases: &[String],
) -> Result<Option<SetExpr>> {
    let needs_join_branch = !tq.loj_joins.is_empty() || !tq.selection.is_empty();
    let needs_multiplicity_branch = !tq.projection_within_root_key();

    let join_branch = needs_join_branch
        .then(|| filter_join_branch(tq, opts, cand_name, key_aliases))
        .transpose()?;
    let multiplicity_branch =
        needs_multiplicity_branch.then(|| filter_multiplicity_branch(cand_name, key_aliases));

    Ok(match (join_branch, multiplicity_branch) {
        (Some(a), Some(b)) => Some(SetExpr::UnionAll(
            Box::new(SetExpr::Select(Box::new(a))),
            Box::new(SetExpr::Select(Box::new(b))),
        )),
        (Some(a), None) => Some(SetExpr::Select(Box::new(a))),
        (None, Some(b)) => Some(SetExpr::Select(Box::new(b))),
        (None, None) => None,
    })
}

/// First Filter branch: candidates joined back to the relations with the
/// left-outer join of Figure 6, keeping those that fail a join or satisfy a
/// negated selection in some repair.
fn filter_join_branch(
    tq: &TreeQuery,
    opts: &RewriteOptions,
    cand_name: &str,
    key_aliases: &[String],
) -> Result<Select> {
    let root = &tq.relations[tq.root];

    // conq_candidates cand JOIN Rroot ON cand.k = root.k AND ...
    let root_on = Expr::conjoin(root.key.iter().zip(key_aliases).map(|(k, alias)| {
        Expr::eq(
            Expr::col(CAND_BINDING, alias.clone()),
            Expr::col(root.binding.clone(), k.clone()),
        )
    }))
    .expect("keys are non-empty");
    let mut from =
        TableRef::aliased(cand_name, CAND_BINDING).join(relation_ref(tq, tq.root), root_on);

    // Inner joins for key-to-key co-roots (their joins hold in every repair).
    for kj in &tq.kj_joins {
        from = from.join(relation_ref(tq, kj.rel), pairs_to_on(&kj.on));
    }
    // Figure 6's LOJ, flattened in BFS order: each ON references only
    // relations already in the chain.
    for loj in &tq.loj_joins {
        from = from.left_outer_join(relation_ref(tq, loj.rel), pairs_to_on(&loj.on));
    }

    // WHERE: R1.K1 IS NULL OR ... OR NSC.
    let mut disjuncts = Vec::new();
    for loj in &tq.loj_joins {
        let rel = &tq.relations[loj.rel];
        let first_key = &rel.key[0];
        disjuncts.push(Expr::is_null(Expr::col(
            rel.binding.clone(),
            first_key.clone(),
        )));
    }
    for sc in &tq.selection {
        disjuncts.push(negate_selection(sc, opts));
    }
    let mut selection = Expr::disjoin(disjuncts);

    if opts.annotated {
        // Candidates proven consistent by the annotations cannot be
        // filtered; skip them before the expensive outer join (Section 5).
        let guard = Expr::binary(
            Expr::col(CAND_BINDING, CONSCAND),
            BinaryOp::Gt,
            Expr::int(0),
        );
        selection = Some(match selection {
            Some(s) => Expr::and(guard, s),
            None => guard,
        });
    }

    Ok(Select {
        distinct: false,
        projection: key_aliases
            .iter()
            .map(|alias| SelectItem::aliased(Expr::col(CAND_BINDING, alias.clone()), alias.clone()))
            .collect(),
        from: vec![from],
        selection,
        group_by: Vec::new(),
        having: None,
    })
}

/// Second Filter branch: keys whose candidates carry more than one value for
/// the projected attributes (Example 4).
fn filter_multiplicity_branch(cand_name: &str, key_aliases: &[String]) -> Select {
    Select {
        distinct: false,
        projection: key_aliases
            .iter()
            .map(|alias| SelectItem::expr(Expr::bare_col(alias.clone())))
            .collect(),
        from: vec![TableRef::table(cand_name)],
        selection: None,
        group_by: key_aliases
            .iter()
            .map(|a| Expr::bare_col(a.clone()))
            .collect(),
        having: Some(Expr::binary(Expr::count_star(), BinaryOp::Gt, Expr::int(1))),
    }
}

/// `NOT EXISTS (SELECT * FROM <filter> conq_f WHERE conq_cand.k = conq_f.k ...)`.
pub(crate) fn not_exists_filter(filter_name: &str, key_aliases: &[String]) -> Expr {
    let on = Expr::conjoin(key_aliases.iter().map(|alias| {
        Expr::eq(
            Expr::col(CAND_BINDING, alias.clone()),
            Expr::col(FILTER_BINDING, alias.clone()),
        )
    }))
    .expect("keys are non-empty");
    Expr::not_exists(Query::from_select(Select {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: vec![TableRef::aliased(filter_name, FILTER_BINDING)],
        selection: Some(on),
        group_by: Vec::new(),
        having: None,
    }))
}

/// A relation as a FROM factor with its original binding.
fn relation_ref(tq: &TreeQuery, rel: usize) -> TableRef {
    let r = &tq.relations[rel];
    if r.binding == r.table {
        TableRef::table(r.table.clone())
    } else {
        TableRef::aliased(r.table.clone(), r.binding.clone())
    }
}

fn pairs_to_on(pairs: &[(ColumnRef, ColumnRef)]) -> Expr {
    Expr::conjoin(
        pairs
            .iter()
            .map(|(a, b)| Expr::eq(Expr::Column(a.clone()), Expr::Column(b.clone()))),
    )
    .expect("join pairs are non-empty")
}

/// `NSC`: the negation of one selection conjunct.
///
/// In paper style, comparisons flip their operator (`>` becomes `<=`) and
/// anything else gets a plain `NOT`. In the default NULL-safe style, the
/// negation is `NOT COALESCE(cond, FALSE)`, which is also satisfied when the
/// condition evaluates to *unknown* — a tuple whose selection is unknown
/// fails the query in the repairs that choose it, so its key is filtered.
pub(crate) fn negate_selection(sc: &Expr, opts: &RewriteOptions) -> Expr {
    if opts.paper_style_negation {
        if let Expr::BinaryOp { left, op, right } = sc {
            if let Some(neg) = op.negated_comparison() {
                return Expr::binary((**left).clone(), neg, (**right).clone());
            }
        }
        return Expr::not(sc.clone());
    }
    Expr::not(Expr::func(
        "coalesce",
        vec![sc.clone(), Expr::Literal(Literal::Boolean(false))],
    ))
}
