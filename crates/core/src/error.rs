//! Error type for the rewriting layer.

use std::fmt;

/// Result alias for conquer-core.
pub type Result<T> = std::result::Result<T, RewriteError>;

/// An error raised while analysing or rewriting a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The query is outside the tree-query class of Definition 4.
    NotATreeQuery(String),
    /// A feature of the query is outside ConQuer's supported fragment.
    Unsupported(String),
    /// A relation in the query has no key constraint in Σ.
    MissingKey(String),
    /// A malformed constraint set.
    InvalidConstraint(String),
    /// Failure in the underlying engine (annotation, execution). Carries
    /// the structured engine error so callers can distinguish resource-limit
    /// trips (timeout, memory, rows, cancellation) from plain failures.
    Engine(conquer_engine::EngineError),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NotATreeQuery(msg) => write!(f, "not a tree query: {msg}"),
            RewriteError::Unsupported(msg) => write!(f, "unsupported query feature: {msg}"),
            RewriteError::MissingKey(rel) => write!(
                f,
                "relation `{rel}` has no key constraint in the query constraint set"
            ),
            RewriteError::InvalidConstraint(msg) => write!(f, "invalid constraint: {msg}"),
            RewriteError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<conquer_engine::EngineError> for RewriteError {
    fn from(e: conquer_engine::EngineError) -> Self {
        RewriteError::Engine(e)
    }
}

impl From<conquer_sql::ParseError> for RewriteError {
    fn from(e: conquer_sql::ParseError) -> Self {
        RewriteError::Engine(e.into())
    }
}
