//! Offline annotation of constraint violations (Section 5 of the paper).
//!
//! When the query constraints are known in advance, ConQuer can preprocess
//! the database, attaching to every tuple a `cons` flag: `'y'` when the
//! tuple's key value occurs exactly once in its relation (the tuple cannot
//! violate the key), `'n'` when it might. The annotation-aware rewritings
//! exploit the flag to focus the expensive Filter work on the (usually
//! small) inconsistent portion of the database — an optimization a generic
//! query optimizer cannot discover because it is unaware of the semantics
//! of consistent query answering.

use std::collections::HashMap;

use conquer_engine::{DataType, Database, Value};

use crate::constraints::ConstraintSet;
use crate::error::{Result, RewriteError};
use crate::rewrite_join::CONS_COLUMN;

/// Report of one relation's annotation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationStats {
    pub relation: String,
    pub total_tuples: usize,
    /// Tuples flagged `'n'` (sharing a key value with another tuple).
    pub inconsistent_tuples: usize,
    /// Distinct key values involved in violations.
    pub violated_keys: usize,
}

/// Annotate every constrained relation of the database in place, replacing
/// each table with a copy carrying the extra `cons` column.
///
/// Errors when a constrained relation is missing from the database, already
/// has a `cons` column, or lacks one of its key attributes.
pub fn annotate_database(db: &Database, sigma: &ConstraintSet) -> Result<Vec<AnnotationStats>> {
    let mut stats = Vec::new();
    for constraint in sigma.iter() {
        let table = db.table(&constraint.relation).map_err(|_| {
            RewriteError::MissingKey(format!(
                "relation `{}` (named in the constraint set) does not exist in the database",
                constraint.relation
            ))
        })?;
        if table.schema().columns.iter().any(|c| c.name == CONS_COLUMN) {
            return Err(RewriteError::InvalidConstraint(format!(
                "relation `{}` already has a `{CONS_COLUMN}` column",
                constraint.relation
            )));
        }
        let key_indices: Vec<usize> = constraint
            .key
            .iter()
            .map(|k| table.column_index(k).map_err(RewriteError::Engine))
            .collect::<Result<_>>()?;

        // First pass: count occurrences of each key value.
        let mut counts: HashMap<conquer_engine::value::Key, u32> =
            HashMap::with_capacity(table.len());
        for row in table.rows() {
            let key_vals: Vec<Value> = key_indices.iter().map(|i| row[*i].clone()).collect();
            *counts
                .entry(conquer_engine::value::Key::from_values(&key_vals))
                .or_insert(0) += 1;
        }
        let violated_keys = counts.values().filter(|c| **c > 1).count();

        // Second pass: attach the flag.
        let mut inconsistent = 0usize;
        let annotated = table.with_computed_column(CONS_COLUMN, DataType::Text, |row| {
            let key_vals: Vec<Value> = key_indices.iter().map(|i| row[*i].clone()).collect();
            let unique = counts[&conquer_engine::value::Key::from_values(&key_vals)] == 1;
            if unique {
                Value::str("y")
            } else {
                inconsistent += 1;
                Value::str("n")
            }
        });
        db.register(annotated)?;
        stats.push(AnnotationStats {
            relation: constraint.relation.clone(),
            total_tuples: table.len(),
            inconsistent_tuples: inconsistent,
            violated_keys,
        });
    }
    Ok(stats)
}

/// `true` when every constrained relation carries a `cons` column.
pub fn is_annotated(db: &Database, sigma: &ConstraintSet) -> bool {
    sigma.iter().all(|c| {
        db.table(&c.relation)
            .map(|t| t.schema().columns.iter().any(|col| col.name == CONS_COLUMN))
            .unwrap_or(false)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let db = Database::new();
        db.run_script(
            "create table customer (custkey text, acctbal float);
             insert into customer values
               ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
        )
        .unwrap();
        db
    }

    #[test]
    fn annotates_figure9() {
        // Figure 9: only t3 (c2) is consistent in the customer relation.
        let db = sample_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        let stats = annotate_database(&db, &sigma).unwrap();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].total_tuples, 5);
        assert_eq!(stats[0].inconsistent_tuples, 4);
        assert_eq!(stats[0].violated_keys, 2);
        assert!(is_annotated(&db, &sigma));

        let rows = db
            .query("select custkey, cons from customer order by custkey, cons")
            .unwrap();
        let flags: Vec<(String, String)> = rows
            .rows
            .iter()
            .map(|r| (r[0].to_string(), r[1].to_string()))
            .collect();
        assert_eq!(
            flags,
            vec![
                ("c1".into(), "n".into()),
                ("c1".into(), "n".into()),
                ("c2".into(), "y".into()),
                ("c3".into(), "n".into()),
                ("c3".into(), "n".into()),
            ]
        );
    }

    #[test]
    fn rejects_double_annotation() {
        let db = sample_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        annotate_database(&db, &sigma).unwrap();
        assert!(annotate_database(&db, &sigma).is_err());
    }

    #[test]
    fn rejects_missing_relation() {
        let db = sample_db();
        let sigma = ConstraintSet::new().with_key("nope", ["k"]);
        assert!(annotate_database(&db, &sigma).is_err());
    }

    #[test]
    fn composite_keys_annotate_correctly() {
        let db = Database::new();
        db.run_script(
            "create table li (ok integer, ln integer, qty integer);
             insert into li values (1, 1, 10), (1, 2, 20), (1, 2, 30);",
        )
        .unwrap();
        let sigma = ConstraintSet::new().with_key("li", ["ok", "ln"]);
        let stats = annotate_database(&db, &sigma).unwrap();
        assert_eq!(stats[0].inconsistent_tuples, 2);
        assert_eq!(stats[0].violated_keys, 1);
    }

    #[test]
    fn not_annotated_before_pass() {
        let db = sample_db();
        let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
        assert!(!is_annotated(&db, &sigma));
    }
}
