//! # ConQuer — Consistent Querying over inconsistent databases
//!
//! A from-scratch reproduction of *ConQuer: Efficient Management of
//! Inconsistent Databases* (Fuxman, Fazli & Miller, SIGMOD 2005).
//!
//! Given a SQL **tree query** (Definition 4 of the paper) and a set of
//! **key query constraints** (at most one key per relation), ConQuer
//! rewrites the query into another SQL query whose answers are exactly the
//! **consistent answers**: the tuples returned by the original query in
//! *every repair* of the database, where a repair keeps exactly one tuple
//! per key value. For queries with aggregation, the rewriting returns
//! **range-consistent answers** — tight `[min, max]` bounds across repairs
//! (Definition 5).
//!
//! Everything is purely declarative: SQL in, SQL out, with a single level
//! of nesting, so a commercial engine can optimize and execute the result.
//!
//! ```
//! use conquer_core::{consistent_answers, ConstraintSet};
//! use conquer_engine::Database;
//!
//! // The inconsistent instance of Figure 1 of the paper.
//! let db = Database::new();
//! db.run_script(
//!     "create table customer (custkey text, acctbal float);
//!      insert into customer values
//!        ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
//! ).unwrap();
//!
//! let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
//! let rows = consistent_answers(
//!     &db,
//!     "select custkey from customer where acctbal > 1000",
//!     &sigma,
//! ).unwrap();
//! // c1 is not consistent (one of its tuples has balance 100);
//! // c3 is consistent exactly once (both tuples satisfy the query).
//! let mut answers: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
//! answers.sort();
//! assert_eq!(answers, vec!["c2", "c3"]);
//! ```

pub mod analyze;
pub mod annotations;
pub mod api;
pub mod constraints;
pub mod error;
pub mod rewrite_agg;
pub mod rewrite_join;

pub use analyze::{analyze, AggKind, ProjItem, TreeQuery};
pub use annotations::{annotate_database, is_annotated, AnnotationStats};
pub use api::{
    consistent_answers, consistent_answers_annotated, consistent_answers_annotated_with,
    consistent_answers_with, declare_key_indexes, possible_answers, prepare_rewrite, rewrite,
    rewrite_sql, rewrite_tree, PreparedRewrite,
};
pub use constraints::{ConstraintSet, KeyConstraint};
pub use error::{Result, RewriteError};
pub use rewrite_join::RewriteOptions;
