//! High-level entry points: rewrite a query, or rewrite-and-execute against
//! a [`Database`].

use std::sync::Arc;

use conquer_engine::{Database, ExecOptions, Rows};
use conquer_sql::ast::Query;
use conquer_sql::parse_query;

use crate::analyze::{analyze, TreeQuery};
use crate::annotations::is_annotated;
use crate::constraints::ConstraintSet;
use crate::error::{Result, RewriteError};
use crate::rewrite_agg::rewrite_agg;
use crate::rewrite_join::{rewrite_join, RewriteOptions};

/// Rewrite a tree query into a SQL query computing its consistent answers
/// (queries without aggregation, Theorem 1) or range-consistent answers
/// (queries with grouping/aggregation, Theorem 2).
pub fn rewrite(query: &Query, sigma: &ConstraintSet, opts: &RewriteOptions) -> Result<Query> {
    let tq = {
        let _span = conquer_obs::span("analyze");
        analyze(query, sigma)?
    };
    rewrite_tree(&tq, opts)
}

/// Rewrite an already-analysed tree query.
pub fn rewrite_tree(tq: &TreeQuery, opts: &RewriteOptions) -> Result<Query> {
    let _span = conquer_obs::span("rewrite")
        .field("aggregates", tq.has_aggregates())
        .field("annotated", opts.annotated);
    if tq.has_aggregates() {
        rewrite_agg(tq, opts)
    } else {
        rewrite_join(tq, opts)
    }
}

/// Rewrite SQL text to SQL text — the form in which ConQuer hands queries
/// to a host database system.
pub fn rewrite_sql(sql: &str, sigma: &ConstraintSet, opts: &RewriteOptions) -> Result<String> {
    let query = parse_sql_spanned(sql)?;
    Ok(rewrite(&query, sigma, opts)?.to_string())
}

fn parse_sql_spanned(sql: &str) -> Result<Query> {
    let _span = conquer_obs::span("parse").field("bytes", sql.len());
    Ok(parse_query(sql)?)
}

/// Compute the consistent (or range-consistent) answers of `sql` on `db`
/// under the key constraints `sigma`, using the plain rewriting.
pub fn consistent_answers(db: &Database, sql: &str, sigma: &ConstraintSet) -> Result<Rows> {
    consistent_answers_with(db, sql, sigma, &ExecOptions::default())
}

/// [`consistent_answers`] under explicit execution options — resource
/// limits and cancellation apply to the rewritten query's execution.
pub fn consistent_answers_with(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
    options: &ExecOptions,
) -> Result<Rows> {
    let query = parse_sql_spanned(sql)?;
    let rewritten = rewrite(&query, sigma, &RewriteOptions::default())?;
    Ok(db.execute_query_with(&rewritten, options)?)
}

/// Compute the consistent answers using the annotation-aware rewriting of
/// Section 5. The database must have been annotated first
/// ([`crate::annotations::annotate_database`]).
pub fn consistent_answers_annotated(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
) -> Result<Rows> {
    consistent_answers_annotated_with(db, sql, sigma, &ExecOptions::default())
}

/// [`consistent_answers_annotated`] under explicit execution options.
pub fn consistent_answers_annotated_with(
    db: &Database,
    sql: &str,
    sigma: &ConstraintSet,
    options: &ExecOptions,
) -> Result<Rows> {
    if !is_annotated(db, sigma) {
        return Err(RewriteError::InvalidConstraint(
            "database is not annotated; call annotate_database first".into(),
        ));
    }
    let query = parse_sql_spanned(sql)?;
    let opts = RewriteOptions {
        annotated: true,
        ..RewriteOptions::default()
    };
    let rewritten = rewrite(&query, sigma, &opts)?;
    Ok(db.execute_query_with(&rewritten, options)?)
}

/// Declare a secondary index on each constrained relation's key columns —
/// the columns that define its conflict groups, and therefore the columns
/// every ConQuer rewriting self-joins (or correlated-EXISTS probes) on.
/// Relations the database does not hold, or whose key columns it lacks,
/// are skipped. Returns how many *new* declarations were made; the
/// postings themselves are built lazily by the first query that plans
/// against each table.
pub fn declare_key_indexes(db: &Database, sigma: &ConstraintSet) -> usize {
    let mut created = 0;
    for kc in sigma.iter() {
        let cols: Vec<&str> = kc.key.iter().map(String::as_str).collect();
        if matches!(db.create_index(&kc.relation, &cols), Ok(true)) {
            created += 1;
        }
    }
    created
}

/// The *possible* answers of a monotone query are the answers of the
/// original query on the inconsistent database (Section 2); provided for
/// symmetry and for the difference-based inconsistency reports of Section 1.
pub fn possible_answers(db: &Database, sql: &str) -> Result<Rows> {
    Ok(db.query(sql)?)
}

/// A cacheable rewrite artifact: the parsed AST plus its consistent-answer
/// rewriting, both behind `Arc` so statement caches (`conquer-serve`) and
/// prepared statements can share them across sessions without re-parsing or
/// re-running the analysis. The rewriting depends only on the SQL text, the
/// constraint set, and the rewrite options — never on the database contents
/// — so a `PreparedRewrite` stays valid across data changes (plans built
/// from it do not; see `Database::catalog_epoch`).
#[derive(Debug, Clone)]
pub struct PreparedRewrite {
    /// The query as written.
    pub original: Arc<Query>,
    /// The consistent-answer (or range-consistent) rewriting.
    pub rewritten: Arc<Query>,
    /// Whether the annotation-aware rewriting (Section 5) was used.
    pub annotated: bool,
}

impl PreparedRewrite {
    /// Execute the rewriting against a database under explicit options.
    pub fn execute_on(&self, db: &Database, options: &ExecOptions) -> Result<Rows> {
        Ok(db.execute_query_with(&self.rewritten, options)?)
    }
}

/// Parse and rewrite once, producing a [`PreparedRewrite`] for repeated
/// execution. With `opts.annotated` set, the caller is responsible for
/// checking [`is_annotated`](crate::annotations::is_annotated) against the
/// target database (the artifact itself is database-independent).
pub fn prepare_rewrite(
    sql: &str,
    sigma: &ConstraintSet,
    opts: &RewriteOptions,
) -> Result<PreparedRewrite> {
    let original = parse_sql_spanned(sql)?;
    let rewritten = rewrite(&original, sigma, opts)?;
    Ok(PreparedRewrite {
        original: Arc::new(original),
        rewritten: Arc::new(rewritten),
        annotated: opts.annotated,
    })
}
