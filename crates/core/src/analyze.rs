//! Query analysis: the join graph (Definition 3) and the tree-query class
//! check (Definition 4).
//!
//! Given a parsed SQL query and a set of key query constraints, `analyze`
//! classifies every join as key-to-key (`KJ`) or (non-)key-to-key (an arc of
//! the join graph), validates that the arcs form a tree, determines the root
//! relation whose key (`Kroot`) drives the rewriting, and splits the
//! remaining predicates into the selection conditions `SC`.
//!
//! One deliberate generalization over the paper's prose: an arc `Ri → Rj`
//! is created whenever attributes of `Ri` that are *not the full key of
//! `Ri`* are equated with the **full key** of `Rj`. TPC-H joins
//! `lineitem.l_orderkey` — part of lineitem's composite key — to
//! `orders.o_orderkey`; the joined-to tuple still varies across repairs of
//! `orders`, so the left-outer-join treatment applies exactly as for a
//! non-key attribute. A join covering the full keys of *both* relations is
//! a `KJ` and needs no outer join (its outcome is repair-invariant).

use std::collections::VecDeque;

use conquer_sql::ast::{
    is_aggregate_function, ColumnRef, Expr, JoinKind, OrderByItem, Query, Select, SelectItem,
    TableRef,
};

use crate::constraints::ConstraintSet;
use crate::error::{Result, RewriteError};

/// One relation occurrence in the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Table name, lower-cased.
    pub table: String,
    /// Binding name (alias, or table name when unaliased).
    pub binding: String,
    /// Key attributes from the constraint set.
    pub key: Vec<String>,
}

/// A join step in the Filter's FROM clause: relation index plus equality
/// pairs `(column of an already-joined relation, column of this relation)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterJoin {
    pub rel: usize,
    pub on: Vec<(ColumnRef, ColumnRef)>,
}

/// Supported aggregate kinds (Theorem 2 covers MIN/MAX/SUM; COUNT and AVG
/// are documented extensions — COUNT is exact, AVG yields sound but not
/// tight bounds under non-negative data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    Sum,
    Min,
    Max,
    CountStar,
    Count,
    Avg,
}

/// A normalized item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum ProjItem {
    /// Non-aggregate expression with its output name.
    Plain { expr: Expr, name: String },
    /// Top-level aggregate `func(arg)` with its output name.
    /// `arg` is `None` for `COUNT(*)`.
    Aggregate {
        kind: AggKind,
        arg: Option<Expr>,
        name: String,
    },
}

impl ProjItem {
    pub fn name(&self) -> &str {
        match self {
            ProjItem::Plain { name, .. } | ProjItem::Aggregate { name, .. } => name,
        }
    }
}

/// The fully analysed tree query, ready for rewriting.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeQuery {
    pub relations: Vec<Relation>,
    /// Index of the root relation of the join graph.
    pub root: usize,
    /// Inner (key-to-key) joins of the Filter, in join order.
    pub kj_joins: Vec<FilterJoin>,
    /// Left outer joins of the Filter (the `LOJ` of Figure 6), in join order.
    pub loj_joins: Vec<FilterJoin>,
    /// All join conjuncts of the original query, for reconstructing it.
    pub join_conjuncts: Vec<Expr>,
    /// Selection conjuncts `SC`.
    pub selection: Vec<Expr>,
    /// Normalized SELECT list.
    pub projection: Vec<ProjItem>,
    /// GROUP BY attributes (column references).
    pub group_by: Vec<ColumnRef>,
    pub distinct: bool,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl TreeQuery {
    /// Key attributes of the root relation as qualified column references.
    pub fn root_key_columns(&self) -> Vec<ColumnRef> {
        let root = &self.relations[self.root];
        root.key
            .iter()
            .map(|k| ColumnRef::new(root.binding.clone(), k.clone()))
            .collect()
    }

    /// `true` when the query has grouping or aggregation.
    pub fn has_aggregates(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .projection
                .iter()
                .any(|p| matches!(p, ProjItem::Aggregate { .. }))
    }

    /// Number of aggregate items in the SELECT list (Figure 10's AggrAttrs).
    pub fn aggregate_count(&self) -> usize {
        self.projection
            .iter()
            .filter(|p| matches!(p, ProjItem::Aggregate { .. }))
            .count()
    }

    /// `true` when every projected item is a key attribute of the root
    /// relation — in that case the multiplicity filter (the `count(*) > 1`
    /// branch of Figure 5) is unnecessary, as in Example 3.
    pub fn projection_within_root_key(&self) -> bool {
        let root = &self.relations[self.root];
        self.projection.iter().all(|item| match item {
            ProjItem::Plain {
                expr: Expr::Column(c),
                ..
            } => {
                let rel_matches = match &c.qualifier {
                    Some(q) => *q == root.binding,
                    None => self.relations.len() == 1,
                };
                rel_matches && root.key.contains(&c.name)
            }
            _ => false,
        })
    }
}

/// Classification of one pairwise join.
#[derive(Debug)]
enum EdgeClass {
    /// Full key of both sides covered.
    KeyToKey,
    /// Arc `from → to`: the pairs cover the full key of `to`.
    Arc { from: usize, to: usize },
}

struct Edge {
    a: usize,
    b: usize,
    /// (column of a, column of b) pairs.
    pairs: Vec<(ColumnRef, ColumnRef)>,
    class: EdgeClass,
}

/// Analyse a query against a constraint set, producing a [`TreeQuery`] or a
/// descriptive error explaining why the query is outside ConQuer's class.
pub fn analyze(query: &Query, sigma: &ConstraintSet) -> Result<TreeQuery> {
    if !query.ctes.is_empty() {
        return Err(RewriteError::Unsupported(
            "WITH clauses in the input query".into(),
        ));
    }
    let select = query.as_select().ok_or_else(|| {
        RewriteError::Unsupported(
            "UNION in the input query (disjunction is outside the tree-query class)".into(),
        )
    })?;
    if select.having.is_some() {
        return Err(RewriteError::Unsupported("HAVING clauses".into()));
    }

    // --- relations -------------------------------------------------------
    let mut relations = Vec::new();
    let mut on_conjuncts: Vec<Expr> = Vec::new();
    for factor in &select.from {
        collect_relations(factor, sigma, &mut relations, &mut on_conjuncts)?;
    }
    if relations.is_empty() {
        return Err(RewriteError::Unsupported(
            "queries without a FROM clause".into(),
        ));
    }
    for (i, r) in relations.iter().enumerate() {
        for other in &relations[..i] {
            if other.binding == r.binding {
                return Err(RewriteError::Unsupported(format!(
                    "duplicate binding `{}` in FROM clause",
                    r.binding
                )));
            }
            if other.table == r.table {
                return Err(RewriteError::NotATreeQuery(format!(
                    "relation `{}` is used more than once (each relation may be used at most once)",
                    r.table
                )));
            }
        }
    }

    // --- conjunct classification ------------------------------------------
    let mut join_pairs: Vec<(usize, usize, ColumnRef, ColumnRef)> = Vec::new();
    let mut selection = Vec::new();
    let mut join_conjuncts = Vec::new();
    let where_conjuncts: Vec<Expr> = select
        .selection
        .iter()
        .flat_map(|w| w.split_conjuncts().into_iter().cloned())
        .collect();
    for conjunct in where_conjuncts.iter().chain(on_conjuncts.iter()) {
        check_plain_predicate(conjunct)?;
        match classify_conjunct(conjunct, &relations)? {
            Some((i, j, ci, cj)) => {
                join_pairs.push((i, j, ci, cj));
                join_conjuncts.push(conjunct.clone());
            }
            None => selection.push(conjunct.clone()),
        }
    }

    // --- group pairs into edges and classify ------------------------------
    let mut edges: Vec<Edge> = Vec::new();
    for (i, j, ci, cj) in join_pairs {
        // Normalize so a < b.
        let (a, b, ca, cb) = if i < j {
            (i, j, ci, cj)
        } else {
            (j, i, cj, ci)
        };
        match edges.iter_mut().find(|e| e.a == a && e.b == b) {
            Some(e) => e.pairs.push((ca, cb)),
            None => edges.push(Edge {
                a,
                b,
                pairs: vec![(ca, cb)],
                class: EdgeClass::KeyToKey,
            }),
        }
    }
    for e in &mut edges {
        e.class = classify_edge(e, &relations)?;
    }

    // --- root discovery and tree validation -------------------------------
    let n = relations.len();
    let mut in_degree = vec![0usize; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut kj_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ei, e) in edges.iter().enumerate() {
        match e.class {
            EdgeClass::KeyToKey => {
                kj_adj[e.a].push(ei);
                kj_adj[e.b].push(ei);
            }
            EdgeClass::Arc { from, to } => {
                in_degree[to] += 1;
                children[from].push(ei);
            }
        }
    }
    for (i, d) in in_degree.iter().enumerate() {
        if *d > 1 {
            return Err(RewriteError::NotATreeQuery(format!(
                "relation `{}` is joined on its key from more than one relation (the join graph is not a tree)",
                relations[i].binding
            )));
        }
    }
    let roots: Vec<usize> = (0..n).filter(|i| in_degree[*i] == 0).collect();
    if roots.is_empty() {
        return Err(RewriteError::NotATreeQuery(
            "the join graph contains a cycle".into(),
        ));
    }
    // All zero-in-degree relations must form a single key-to-key connected
    // component (the merged root).
    let root = roots[0];
    let mut in_root_component = vec![false; n];
    let mut kj_joins = Vec::new();
    let mut queue = VecDeque::from([root]);
    in_root_component[root] = true;
    while let Some(r) = queue.pop_front() {
        for &ei in &kj_adj[r] {
            let e = &edges[ei];
            let (other, on) = if e.a == r {
                (e.b, e.pairs.clone())
            } else {
                (
                    e.a,
                    e.pairs
                        .iter()
                        .map(|(x, y)| (y.clone(), x.clone()))
                        .collect(),
                )
            };
            if !in_root_component[other] {
                in_root_component[other] = true;
                kj_joins.push(FilterJoin { rel: other, on });
                queue.push_back(other);
            }
        }
    }
    for &r in &roots {
        if !in_root_component[r] {
            return Err(RewriteError::NotATreeQuery(format!(
                "relations `{}` and `{}` are not connected by joins (the join graph is a forest, not a tree)",
                relations[root].binding, relations[r].binding
            )));
        }
    }
    for (i, in_comp) in in_root_component.iter().enumerate() {
        if *in_comp && in_degree[i] > 0 {
            return Err(RewriteError::NotATreeQuery(format!(
                "relation `{}` participates in a key-to-key join with the root but is also joined on its key (unsupported shape)",
                relations[i].binding
            )));
        }
    }
    // Key-to-key edges must live inside the root component.
    for e in &edges {
        if matches!(e.class, EdgeClass::KeyToKey)
            && (!in_root_component[e.a] || !in_root_component[e.b])
        {
            return Err(RewriteError::Unsupported(format!(
                "key-to-key join between `{}` and `{}` outside the root of the join graph",
                relations[e.a].binding, relations[e.b].binding
            )));
        }
    }

    // BFS along arcs from the root component, building the LOJ order.
    let mut visited = in_root_component.clone();
    let mut loj_joins = Vec::new();
    let mut queue: VecDeque<usize> = (0..n).filter(|i| in_root_component[*i]).collect();
    while let Some(r) = queue.pop_front() {
        for &ei in &children[r] {
            let e = &edges[ei];
            let EdgeClass::Arc { from, to } = e.class else {
                // `children` only ever holds arc edges; keep the path
                // structured-error-only regardless.
                return Err(RewriteError::NotATreeQuery(
                    "internal: non-arc edge in join-tree traversal".into(),
                ));
            };
            debug_assert_eq!(from, r);
            let on: Vec<(ColumnRef, ColumnRef)> = if e.a == from {
                e.pairs.clone()
            } else {
                e.pairs
                    .iter()
                    .map(|(x, y)| (y.clone(), x.clone()))
                    .collect()
            };
            if visited[to] {
                return Err(RewriteError::NotATreeQuery(format!(
                    "relation `{}` is reachable by two join paths",
                    relations[to].binding
                )));
            }
            visited[to] = true;
            loj_joins.push(FilterJoin { rel: to, on });
            queue.push_back(to);
        }
    }
    if let Some(i) = visited.iter().position(|v| !v) {
        return Err(RewriteError::NotATreeQuery(format!(
            "relation `{}` is not connected to the rest of the query by joins",
            relations[i].binding
        )));
    }

    // --- projection & grouping --------------------------------------------
    let projection = analyze_projection(select, &relations)?;
    let group_by = analyze_group_by(select, &projection, &relations)?;
    if select.distinct
        && projection
            .iter()
            .any(|p| matches!(p, ProjItem::Aggregate { .. }))
    {
        return Err(RewriteError::Unsupported(
            "SELECT DISTINCT with aggregates".into(),
        ));
    }

    Ok(TreeQuery {
        relations,
        root,
        kj_joins,
        loj_joins,
        join_conjuncts,
        selection,
        projection,
        group_by,
        distinct: select.distinct,
        order_by: query.order_by.clone(),
        limit: query.limit,
    })
}

/// Flatten a FROM factor into base relations, hoisting inner-join ON
/// conditions into the conjunct pool.
fn collect_relations(
    factor: &TableRef,
    sigma: &ConstraintSet,
    relations: &mut Vec<Relation>,
    on_conjuncts: &mut Vec<Expr>,
) -> Result<()> {
    match factor {
        TableRef::Table { name, alias } => {
            let table = name.to_ascii_lowercase();
            let key = sigma
                .key_of(&table)
                .ok_or_else(|| RewriteError::MissingKey(table.clone()))?
                .to_vec();
            let binding = alias
                .clone()
                .unwrap_or_else(|| table.clone())
                .to_ascii_lowercase();
            relations.push(Relation {
                table,
                binding,
                key,
            });
            Ok(())
        }
        TableRef::Subquery { .. } => Err(RewriteError::Unsupported(
            "derived tables in the input query".into(),
        )),
        TableRef::Join {
            left,
            kind,
            right,
            on,
        } => {
            match kind {
                JoinKind::Inner => {}
                JoinKind::LeftOuter => {
                    return Err(RewriteError::Unsupported(
                        "LEFT OUTER JOIN in the input query (outside the tree-query class)".into(),
                    ))
                }
                JoinKind::Cross => {
                    return Err(RewriteError::Unsupported("CROSS JOIN syntax".into()))
                }
            }
            collect_relations(left, sigma, relations, on_conjuncts)?;
            collect_relations(right, sigma, relations, on_conjuncts)?;
            if let Some(on) = on {
                on_conjuncts.extend(on.split_conjuncts().into_iter().cloned());
            }
            Ok(())
        }
    }
}

/// Reject subqueries and aggregates inside WHERE/ON conjuncts.
fn check_plain_predicate(e: &Expr) -> Result<()> {
    if e.contains_aggregate() {
        return Err(RewriteError::Unsupported("aggregates in WHERE".into()));
    }
    if expr_has_subquery(e) {
        return Err(RewriteError::Unsupported(
            "nested subqueries in the input query (decorrelate and unnest first, as in Section 6.1)".into(),
        ));
    }
    Ok(())
}

fn expr_has_subquery(e: &Expr) -> bool {
    match e {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
        Expr::BinaryOp { left, right, .. } => expr_has_subquery(left) || expr_has_subquery(right),
        Expr::UnaryOp { expr, .. } | Expr::IsNull { expr, .. } => expr_has_subquery(expr),
        Expr::Between {
            expr, low, high, ..
        } => expr_has_subquery(expr) || expr_has_subquery(low) || expr_has_subquery(high),
        Expr::InList { expr, list, .. } => {
            expr_has_subquery(expr) || list.iter().any(expr_has_subquery)
        }
        Expr::Like { expr, pattern, .. } => expr_has_subquery(expr) || expr_has_subquery(pattern),
        Expr::Case {
            branches,
            else_expr,
        } => {
            branches
                .iter()
                .any(|(c, v)| expr_has_subquery(c) || expr_has_subquery(v))
                || else_expr.as_deref().is_some_and(expr_has_subquery)
        }
        Expr::Function { args, .. } => args.iter().any(expr_has_subquery),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => false,
    }
}

/// Resolve a column reference to a relation index. Bare names resolve only
/// in single-relation queries.
fn resolve_relation(col: &ColumnRef, relations: &[Relation]) -> Option<usize> {
    match &col.qualifier {
        Some(q) => relations.iter().position(|r| r.binding == *q),
        None => {
            if relations.len() == 1 {
                Some(0)
            } else {
                None
            }
        }
    }
}

/// Classify one conjunct: `Some((i, j, ci, cj))` for a join between distinct
/// relations, `None` for a selection condition.
fn classify_conjunct(
    conjunct: &Expr,
    relations: &[Relation],
) -> Result<Option<(usize, usize, ColumnRef, ColumnRef)>> {
    let Expr::BinaryOp { left, op, right } = conjunct else {
        return Ok(None);
    };
    let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) else {
        return Ok(None);
    };
    use conquer_sql::BinaryOp::Eq;
    if *op != Eq {
        // Inequality between columns of different relations would be an
        // inequality join, which Definition 4 excludes.
        if relations.len() > 1 {
            let ra = resolve_relation(a, relations);
            let rb = resolve_relation(b, relations);
            if let (Some(i), Some(j)) = (ra, rb) {
                if i != j {
                    return Err(RewriteError::NotATreeQuery(format!(
                        "inequality join between `{}` and `{}` (only equi-joins are supported)",
                        relations[i].binding, relations[j].binding
                    )));
                }
            }
        }
        return Ok(None);
    }
    let ra = resolve_relation(a, relations);
    let rb = resolve_relation(b, relations);
    match (ra, rb) {
        (Some(i), Some(j)) if i != j => Ok(Some((i, j, a.clone(), b.clone()))),
        (Some(_), Some(_)) => Ok(None), // same-relation equality: a selection
        _ if relations.len() == 1 => Ok(None),
        _ => Err(RewriteError::Unsupported(format!(
            "cannot resolve the relations of equality `{conjunct}`; qualify both columns"
        ))),
    }
}

/// Classify an edge by key coverage on each side.
fn classify_edge(edge: &Edge, relations: &[Relation]) -> Result<EdgeClass> {
    let covers = |rel: usize, side_a: bool| -> bool {
        let key = &relations[rel].key;
        key.iter().all(|k| {
            edge.pairs.iter().any(|(ca, cb)| {
                let c = if side_a { ca } else { cb };
                c.name == *k
            })
        })
    };
    let a_covered = covers(edge.a, true);
    let b_covered = covers(edge.b, false);
    match (a_covered, b_covered) {
        (true, true) => Ok(EdgeClass::KeyToKey),
        (false, true) => Ok(EdgeClass::Arc {
            from: edge.a,
            to: edge.b,
        }),
        (true, false) => Ok(EdgeClass::Arc {
            from: edge.b,
            to: edge.a,
        }),
        (false, false) => Err(RewriteError::NotATreeQuery(format!(
            "the join between `{}` and `{}` does not involve the full key of either relation",
            relations[edge.a].binding, relations[edge.b].binding
        ))),
    }
}

fn analyze_projection(select: &Select, relations: &[Relation]) -> Result<Vec<ProjItem>> {
    let mut items = Vec::new();
    for (i, item) in select.projection.iter().enumerate() {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                return Err(RewriteError::Unsupported(
                    "wildcard projection (list the attributes explicitly)".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column(c) => c.name.clone(),
                        Expr::Function { name, .. } => name.clone(),
                        _ => format!("_col{}", i + 1),
                    },
                };
                if expr.contains_aggregate() {
                    items.push(parse_aggregate_item(expr, name, relations)?);
                } else {
                    items.push(ProjItem::Plain {
                        expr: expr.clone(),
                        name,
                    });
                }
            }
        }
    }
    if items.is_empty() {
        return Err(RewriteError::Unsupported("empty SELECT list".into()));
    }
    Ok(items)
}

fn parse_aggregate_item(expr: &Expr, name: String, _relations: &[Relation]) -> Result<ProjItem> {
    let Expr::Function {
        name: fname,
        args,
        distinct,
    } = expr
    else {
        return Err(RewriteError::Unsupported(format!(
            "expressions over aggregates in the SELECT list (`{expr}`); project the aggregate directly"
        )));
    };
    if !is_aggregate_function(fname) {
        return Err(RewriteError::Unsupported(format!("function `{fname}`")));
    }
    if *distinct {
        return Err(RewriteError::Unsupported(format!(
            "DISTINCT aggregates (`{fname}(DISTINCT ...)`) have no range-consistent rewriting"
        )));
    }
    let (kind, arg) = match (fname.as_str(), args.as_slice()) {
        ("count", [Expr::Wildcard]) => (AggKind::CountStar, None),
        ("count", [a]) => (AggKind::Count, Some(a.clone())),
        ("sum", [a]) => (AggKind::Sum, Some(a.clone())),
        ("min", [a]) => (AggKind::Min, Some(a.clone())),
        ("max", [a]) => (AggKind::Max, Some(a.clone())),
        ("avg", [a]) => (AggKind::Avg, Some(a.clone())),
        _ => {
            return Err(RewriteError::Unsupported(format!(
                "aggregate `{fname}` with {} arguments",
                args.len()
            )))
        }
    };
    if let Some(a) = &arg {
        if a.contains_aggregate() {
            return Err(RewriteError::Unsupported("nested aggregates".into()));
        }
        if expr_has_subquery(a) {
            return Err(RewriteError::Unsupported(
                "subquery inside an aggregate".into(),
            ));
        }
    }
    Ok(ProjItem::Aggregate { kind, arg, name })
}

fn analyze_group_by(
    select: &Select,
    projection: &[ProjItem],
    relations: &[Relation],
) -> Result<Vec<ColumnRef>> {
    let mut group_by = Vec::new();
    for g in &select.group_by {
        let Expr::Column(c) = g else {
            return Err(RewriteError::Unsupported(format!(
                "GROUP BY expression `{g}` (only attributes are supported)"
            )));
        };
        group_by.push(c.clone());
    }
    let has_agg = projection
        .iter()
        .any(|p| matches!(p, ProjItem::Aggregate { .. }));
    if !has_agg && group_by.is_empty() {
        return Ok(group_by);
    }

    // Resolve a column to (relation, attribute) for structural comparison.
    let resolve = |c: &ColumnRef| -> Result<(usize, String)> {
        match resolve_relation(c, relations) {
            Some(i) => Ok((i, c.name.clone())),
            None => Err(RewriteError::Unsupported(format!(
                "cannot resolve column `{c}`; qualify it"
            ))),
        }
    };

    // Every plain projected item must be a grouped attribute, and every
    // grouped attribute must be projected (the paper's restriction).
    let resolved_groups: Vec<(usize, String)> =
        group_by.iter().map(&resolve).collect::<Result<_>>()?;
    let mut projected_groups = Vec::new();
    for item in projection {
        if let ProjItem::Plain { expr, name } = item {
            let Expr::Column(c) = expr else {
                return Err(RewriteError::Unsupported(format!(
                    "non-attribute expression `{expr}` projected alongside aggregates"
                )));
            };
            let rc = resolve(c)?;
            if !resolved_groups.contains(&rc) {
                return Err(RewriteError::NotATreeQuery(format!(
                    "projected attribute `{name}` does not appear in GROUP BY"
                )));
            }
            projected_groups.push(rc);
        }
    }
    for (g, rg) in group_by.iter().zip(&resolved_groups) {
        if !projected_groups.contains(rg) {
            return Err(RewriteError::Unsupported(format!(
                "GROUP BY attribute `{g}` does not appear in the SELECT list \
                 (the paper's rewriting requires grouped attributes to be projected)"
            )));
        }
    }
    Ok(group_by)
}
