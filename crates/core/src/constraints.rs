//! Key *query constraints* (Section 2 of the paper).
//!
//! These constraints do not restrict valid database instances; they
//! constrain the set of *consistent answers* computed for a query. A
//! constraint set holds at most one key constraint per relation.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{Result, RewriteError};

/// A key constraint: `key` is the (composite) key of `relation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyConstraint {
    pub relation: String,
    pub key: Vec<String>,
}

impl fmt::Display for KeyConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key({}) = ({})", self.relation, self.key.join(", "))
    }
}

/// A set of key query constraints, at most one per relation.
///
/// Relation and attribute names are stored lower-cased to match the SQL
/// dialect's case-insensitive identifiers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    keys: BTreeMap<String, Vec<String>>,
}

impl ConstraintSet {
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Builder-style: add a key constraint for a relation.
    ///
    /// # Panics
    /// Panics when the relation already has a key or the key is empty;
    /// use [`ConstraintSet::add_key`] for fallible insertion.
    pub fn with_key<S: Into<String>>(
        mut self,
        relation: impl Into<String>,
        key: impl IntoIterator<Item = S>,
    ) -> ConstraintSet {
        self.add_key(relation, key).expect("invalid key constraint");
        self
    }

    /// Add a key constraint; errors on duplicates and empty keys.
    pub fn add_key<S: Into<String>>(
        &mut self,
        relation: impl Into<String>,
        key: impl IntoIterator<Item = S>,
    ) -> Result<()> {
        let relation = relation.into().to_ascii_lowercase();
        let key: Vec<String> = key
            .into_iter()
            .map(|s| s.into().to_ascii_lowercase())
            .collect();
        if key.is_empty() {
            return Err(RewriteError::InvalidConstraint(format!(
                "key for `{relation}` must have at least one attribute"
            )));
        }
        let mut dedup = key.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != key.len() {
            return Err(RewriteError::InvalidConstraint(format!(
                "key for `{relation}` has duplicate attributes"
            )));
        }
        if self.keys.contains_key(&relation) {
            return Err(RewriteError::InvalidConstraint(format!(
                "relation `{relation}` already has a key constraint (at most one per relation)"
            )));
        }
        self.keys.insert(relation, key);
        Ok(())
    }

    /// The key of a relation, if constrained.
    pub fn key_of(&self, relation: &str) -> Option<&[String]> {
        self.keys
            .get(&relation.to_ascii_lowercase())
            .map(Vec::as_slice)
    }

    /// `true` when `attr` is one of `relation`'s key attributes.
    pub fn is_key_attr(&self, relation: &str, attr: &str) -> bool {
        self.key_of(relation)
            .is_some_and(|k| k.iter().any(|a| a == &attr.to_ascii_lowercase()))
    }

    /// Iterate over all constraints.
    pub fn iter(&self) -> impl Iterator<Item = KeyConstraint> + '_ {
        self.keys.iter().map(|(r, k)| KeyConstraint {
            relation: r.clone(),
            key: k.clone(),
        })
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let sigma = ConstraintSet::new()
            .with_key("customer", ["custkey"])
            .with_key("LINEITEM", ["L_ORDERKEY", "l_linenumber"]);
        assert_eq!(sigma.key_of("CUSTOMER"), Some(&["custkey".to_string()][..]));
        assert!(sigma.is_key_attr("lineitem", "l_orderkey"));
        assert!(!sigma.is_key_attr("lineitem", "l_quantity"));
        assert_eq!(sigma.key_of("orders"), None);
        assert_eq!(sigma.len(), 2);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut sigma = ConstraintSet::new().with_key("t", ["a"]);
        assert!(sigma.add_key("t", ["b"]).is_err());
    }

    #[test]
    fn empty_or_duplicate_key_rejected() {
        let mut sigma = ConstraintSet::new();
        assert!(sigma.add_key("t", Vec::<String>::new()).is_err());
        assert!(sigma.add_key("t", ["a", "a"]).is_err());
    }

    #[test]
    fn display_format() {
        let sigma = ConstraintSet::new().with_key("orders", ["orderkey"]);
        let c: Vec<KeyConstraint> = sigma.iter().collect();
        assert_eq!(c[0].to_string(), "key(orders) = (orderkey)");
    }
}
