//! EXPLAIN ANALYZE over ConQuer rewritings: the per-operator stats the
//! executor reports must agree with the cardinalities the query actually
//! produces, on the plans the rewriting generates (CTEs, anti joins,
//! aggregation).

use conquer_core::{consistent_answers, rewrite, ConstraintSet, RewriteOptions};
use conquer_engine::stats::NodeStats;
use conquer_engine::{explain_analyze, stats_json, Database, ExecOptions, Value};
use conquer_sql::parse_query;

fn inconsistent_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table emp (id integer, dept text, salary integer);
         insert into emp values
             (1, 'eng', 100), (1, 'eng', 200),
             (2, 'eng', 150),
             (3, 'ops', 90), (3, 'sales', 95);",
    )
    .unwrap();
    db
}

fn sigma() -> ConstraintSet {
    ConstraintSet::new().with_key("emp", ["id"])
}

/// The representative query: a selection over the inconsistent relation.
/// Its rewriting builds candidate/filter CTEs and an anti join.
const QUERY: &str = "select emp.id, emp.dept from emp where emp.salary > 80";

#[test]
fn explain_analyze_root_cardinality_matches_result() {
    let db = inconsistent_db();
    let rewritten = rewrite(
        &parse_query(QUERY).unwrap(),
        &sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    let (rows, plan, stats) = db
        .execute_query_traced(&rewritten, &ExecOptions::default())
        .unwrap();

    // The traced run and the plain rewriting agree.
    let plain = consistent_answers(&db, QUERY, &sigma()).unwrap();
    assert_eq!(rows.rows, plain.rows);

    // Root operator's reported output cardinality is the result size.
    assert_eq!(stats.rows_out as usize, rows.rows.len());

    // Keys 1 and 2 are certain ('eng' in every repair); key 3's dept
    // depends on which tuple survives.
    assert_eq!(
        rows.rows,
        vec![
            vec![Value::Int(1), Value::str("eng")],
            vec![Value::Int(2), Value::str("eng")],
        ]
    );

    // Every rendered line carries its measured row count.
    let text = conquer_engine::explain::explain_analyze(&plan, &stats);
    for line in text.lines() {
        assert!(line.contains("rows="), "unannotated line: {line}");
    }
}

#[test]
fn explain_analyze_inner_cardinalities_are_consistent() {
    let db = inconsistent_db();
    let rewritten = rewrite(
        &parse_query(QUERY).unwrap(),
        &sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    let (rows, plan, stats) = db
        .execute_query_traced(&rewritten, &ExecOptions::default())
        .unwrap();

    // Walk the stats tree: every operator ran exactly once (no correlated
    // re-execution in this plan), and each node's input equals the sum of
    // its children's outputs by construction.
    fn walk(s: &NodeStats, checks: &mut u64) {
        assert_eq!(s.invocations, 1);
        let child_out: u64 = s.children.iter().map(|c| c.rows_out).sum();
        assert_eq!(s.rows_in(), child_out);
        *checks += 1;
        for c in &s.children {
            walk(c, checks);
        }
    }
    let mut checks = 0;
    walk(&stats, &mut checks);
    assert!(
        checks > 3,
        "rewritten plan should have several operators, saw {checks}"
    );

    // The human and JSON renderings describe the same tree.
    let text = explain_analyze(&plan, &stats);
    let json = stats_json(&plan, &stats);
    assert_eq!(text.lines().count() as u64, checks);
    assert_eq!(
        json.get("rows_out"),
        Some(&conquer_obs::Json::UInt(rows.rows.len() as u64))
    );
}

#[test]
fn explain_lists_the_rewritten_plan_without_running_it() {
    let db = inconsistent_db();
    let rewritten = rewrite(
        &parse_query(QUERY).unwrap(),
        &sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    let text = db
        .explain_with(&rewritten.to_string(), &ExecOptions::default())
        .unwrap();
    // The rewriting planner turns the NOT EXISTS filter into an anti join.
    assert!(
        text.contains("Anti") || text.contains("Filter"),
        "expected filtering machinery in:\n{text}"
    );
    // Plain EXPLAIN carries planner estimates but no measurements.
    assert!(
        text.contains("est_rows="),
        "explain should print cardinality estimates:\n{text}"
    );
    assert!(
        !text.contains("wall=") && !text.contains("(rows="),
        "plain explain must not claim measurements:\n{text}"
    );
}
