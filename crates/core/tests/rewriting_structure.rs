//! Structural golden checks on the generated SQL and on the physical plans
//! the engine builds for it: the pieces of Figures 5 and 8 must be present,
//! and the Section 5 `conscand` guard must end up *below* the Filter's
//! joins after the engine's pushdown pass (the behaviour the paper
//! attributes to DB2's optimizer).

use conquer_core::{annotate_database, rewrite_sql, ConstraintSet, RewriteOptions};
use conquer_engine::{Database, ExecOptions};
use conquer_sql::parse_query;

fn sigma() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("orders", ["orderkey"])
        .with_key("customer", ["custkey"])
}

const Q_AGG: &str = "select c.mktsegment, sum(o.total) as revenue \
                     from orders o, customer c \
                     where o.custfk = c.custkey and o.total > 0 \
                     group by c.mktsegment";

#[test]
fn agg_rewriting_contains_every_figure8_piece() {
    let sql = rewrite_sql(Q_AGG, &sigma(), &RewriteOptions::default()).unwrap();
    // The shared base (Section 6.1 materialization), q_G's candidates and
    // filter, QGCons, both bound queries, and the final re-aggregation.
    for piece in [
        "conq_base AS (",
        "conq_qg_candidates AS (",
        "conq_qg_filter AS (",
        "conq_qg_cons AS (",
        "conq_unfiltered AS (",
        "conq_filtered AS (",
        "UNION ALL",
        "NOT EXISTS (SELECT * FROM conq_qg_filter",
        "EXISTS (SELECT * FROM conq_qg_cons",
        "CASE WHEN min(",
        "CASE WHEN max(",
        "sum(conq_u.conq_min",
        "sum(conq_u.conq_max",
    ] {
        assert!(sql.contains(piece), "missing {piece:?} in:\n{sql}");
    }
    // And it is valid SQL.
    parse_query(&sql).unwrap();
}

#[test]
fn global_aggregate_rewriting_skips_qg_cons() {
    let sql = rewrite_sql(
        "select sum(o.total) as t from orders o where o.total > 0",
        &sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    assert!(!sql.contains("conq_qg_cons"), "{sql}");
    assert!(sql.contains("conq_qg_filter"), "{sql}");
}

#[test]
fn unfilterable_aggregate_query_has_no_filter_ctes_at_all() {
    // No selections, no joins, key-only grouping impossible here — but with
    // no WHERE and a single relation, nothing can ever be filtered except
    // by multiplicity of the grouped attribute.
    let sql = rewrite_sql(
        "select sum(o.total) as t from orders o",
        &sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    // No selection and key-grouped candidates: the filter disappears and
    // with it the FilteredCandidates branch.
    assert!(!sql.contains("conq_filtered"), "{sql}");
    assert!(!sql.contains("conq_qg_filter"), "{sql}");
}

#[test]
fn paper_style_vs_null_safe_negation() {
    let q = "select o.orderkey from orders o where o.total > 100";
    let strict = rewrite_sql(q, &sigma(), &RewriteOptions::default()).unwrap();
    assert!(
        strict.contains("NOT coalesce(o.total > 100, FALSE)"),
        "{strict}"
    );
    let paper = rewrite_sql(
        q,
        &sigma(),
        &RewriteOptions {
            paper_style_negation: true,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(paper.contains("o.total <= 100"), "{paper}");
    assert!(!paper.contains("coalesce"), "{paper}");
}

#[test]
fn conscand_guard_is_pushed_below_the_filter_join() {
    // Build a tiny annotated database, plan the annotated rewriting, and
    // check the physical plan: the guard must sit on the candidates scan,
    // below the hash join against the root relation.
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, custfk text, total float);
         insert into orders values ('o1', 'c1', 10), ('o2', 'c2', 20), ('o2', 'c9', 30);
         create table customer (custkey text, mktsegment text);
         insert into customer values ('c1', 'A'), ('c2', 'B'), ('c3', 'B');",
    )
    .unwrap();
    let sigma = sigma_with_cols();
    annotate_database(&db, &sigma).unwrap();
    let sql = conquer_core::rewrite_sql(
        "select o.orderkey from orders o, customer c where o.custfk = c.custkey",
        &sigma,
        &RewriteOptions {
            annotated: true,
            ..Default::default()
        },
    )
    .unwrap();
    let query = parse_query(&sql).unwrap();
    let plan = db.plan(&query, &ExecOptions::default()).unwrap();
    let shape = format!("{plan:?}");
    // The final plan is the anti-join of candidates against the filter; the
    // filter CTE was already materialized during planning, so here we only
    // assert the whole thing planned and runs.
    assert!(shape.contains("HashJoin"), "{shape}");
    let rows = db.execute_query(&query).unwrap();
    let mut vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    vals.sort();
    // o1 joins the unique c1 consistently; o2's second tuple dangles
    // (custfk c9 does not exist), so o2 fails the join in one repair.
    assert_eq!(vals, vec!["o1"]);
}

fn sigma_with_cols() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("orders", ["orderkey"])
        .with_key("customer", ["custkey"])
}

#[test]
fn pushdown_off_still_produces_identical_answers() {
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, custfk text, total float);
         insert into orders values ('o1', 'c1', 10), ('o2', 'c2', 20), ('o2', 'c3', 30);
         create table customer (custkey text, mktsegment text);
         insert into customer values ('c1', 'A'), ('c2', 'B'), ('c3', 'B');",
    )
    .unwrap();
    let sigma = sigma_with_cols();
    let sql = rewrite_sql(
        "select o.orderkey from orders o, customer c where o.custfk = c.custkey",
        &sigma,
        &RewriteOptions::default(),
    )
    .unwrap();
    let query = parse_query(&sql).unwrap();
    let with = db
        .execute_query_with(&query, &ExecOptions::default())
        .unwrap();
    let without = db
        .execute_query_with(
            &query,
            &ExecOptions {
                pushdown_filters: false,
                ..Default::default()
            },
        )
        .unwrap();
    let norm = |r: &conquer_engine::Rows| {
        let mut v: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(norm(&with), norm(&without));
}

#[test]
fn key_only_join_query_rewrites_without_multiplicity_branch() {
    let sql = rewrite_sql(
        "select o.orderkey from orders o, customer c \
         where o.custfk = c.custkey and c.mktsegment = 'B'",
        &sigma_with_cols(),
        &RewriteOptions::default(),
    )
    .unwrap();
    assert!(!sql.contains("HAVING count(*) > 1"), "{sql}");
    assert!(sql.contains("LEFT OUTER JOIN customer"), "{sql}");
}

#[test]
fn non_key_projection_adds_multiplicity_branch() {
    let sql = rewrite_sql(
        "select c.mktsegment from orders o, customer c where o.custfk = c.custkey",
        &sigma_with_cols(),
        &RewriteOptions::default(),
    )
    .unwrap();
    assert!(sql.contains("HAVING count(*) > 1"), "{sql}");
}

#[test]
fn composite_root_keys_emit_multiple_key_aliases() {
    let sigma = ConstraintSet::new()
        .with_key("lineitem", ["l_orderkey", "l_linenumber"])
        .with_key("orders", ["o_orderkey"]);
    let sql = rewrite_sql(
        "select l.l_quantity from lineitem l, orders o \
         where l.l_orderkey = o.o_orderkey and o.o_total > 5",
        &sigma,
        &RewriteOptions::default(),
    )
    .unwrap();
    assert!(sql.contains("conq_k1"), "{sql}");
    assert!(sql.contains("conq_k2"), "{sql}");
    assert!(
        sql.contains("conq_cand.conq_k1 = conq_f.conq_k1 AND conq_cand.conq_k2 = conq_f.conq_k2"),
        "{sql}"
    );
}
