//! Reproductions of the worked examples of the paper (Examples 1–9 and the
//! instances of Figures 1, 2 and 7), running the generated rewritings on
//! the engine, plus structural checks on the generated SQL and negative
//! tests for the tree-query classification.

use conquer_core::{
    analyze, annotate_database, consistent_answers, consistent_answers_annotated, rewrite_sql,
    ConstraintSet, RewriteError, RewriteOptions,
};
use conquer_engine::{Database, Value};
use conquer_sql::parse_query;

fn figure1_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    db
}

fn figure2_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table orders (orderkey text, clerk text, custfk text);
         insert into orders values
           ('o1', 'ali', 'c1'), ('o2', 'jo', 'c2'), ('o2', 'ali', 'c3'),
           ('o3', 'ali', 'c4'), ('o3', 'pat', 'c2'), ('o4', 'ali', 'c2'),
           ('o4', 'ali', 'c3'), ('o5', 'ali', 'c2');
         create table customer (custkey text, acctbal float);
         insert into customer values
           ('c1', 2000), ('c1', 100), ('c2', 2500), ('c3', 2200), ('c3', 2500);",
    )
    .unwrap();
    db
}

fn figure7_db() -> Database {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, nationkey text, mktsegment text, acctbal float);
         insert into customer values
           ('c1', 'n1', 'building', 1000),
           ('c1', 'n1', 'building', 2000),
           ('c2', 'n1', 'building', 500),
           ('c2', 'n1', 'banking', 600),
           ('c3', 'n2', 'banking', 100);",
    )
    .unwrap();
    db
}

fn figure2_sigma() -> ConstraintSet {
    ConstraintSet::new()
        .with_key("orders", ["orderkey"])
        .with_key("customer", ["custkey"])
}

fn strings(rows: &conquer_engine::Rows, col: usize) -> Vec<String> {
    let mut v: Vec<String> = rows.rows.iter().map(|r| r[col].to_string()).collect();
    v.sort();
    v
}

// --- Example 1 / Figure 1 -------------------------------------------------

#[test]
fn example1_consistent_answers() {
    let db = figure1_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select custkey from customer where acctbal > 1000",
        &sigma,
    )
    .unwrap();
    assert_eq!(strings(&rows, 0), vec!["c2", "c3"]);
}

#[test]
fn example1_difference_detects_inconsistency() {
    // Section 1: the difference between the original and rewritten query
    // flags c1 as potentially inconsistent.
    let db = figure1_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let q = "select custkey from customer where acctbal > 1000";
    let possible = db.query(q).unwrap();
    let consistent = consistent_answers(&db, q, &sigma).unwrap();
    let mut possible_set = strings(&possible, 0);
    possible_set.dedup();
    let consistent_set = strings(&consistent, 0);
    let suspicious: Vec<String> = possible_set
        .into_iter()
        .filter(|v| !consistent_set.contains(v))
        .collect();
    assert_eq!(suspicious, vec!["c1"]);
}

// --- Example 3 / Figures 2 and 3 -------------------------------------------

#[test]
fn example3_q2_consistent_orders() {
    let db = figure2_db();
    let rows = consistent_answers(
        &db,
        "select o.orderkey from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey",
        &figure2_sigma(),
    )
    .unwrap();
    assert_eq!(strings(&rows, 0), vec!["o2", "o4", "o5"]);
}

#[test]
fn example3_rewriting_structure_matches_figure3() {
    let sql = rewrite_sql(
        "select o.orderkey from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey",
        &figure2_sigma(),
        &RewriteOptions {
            paper_style_negation: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Two CTEs, a left outer join, the IS NULL check, the negated selection,
    // and NOT EXISTS — and, since only the root key is projected, no
    // multiplicity (count(*) > 1) branch.
    assert!(
        sql.contains("WITH conq_candidates AS (SELECT DISTINCT"),
        "{sql}"
    );
    assert!(sql.contains("conq_filter AS ("), "{sql}");
    assert!(
        sql.contains("LEFT OUTER JOIN customer c ON o.custfk = c.custkey"),
        "{sql}"
    );
    assert!(sql.contains("c.custkey IS NULL"), "{sql}");
    assert!(sql.contains("c.acctbal <= 1000"), "{sql}");
    assert!(sql.contains("NOT EXISTS"), "{sql}");
    assert!(!sql.contains("count(*) > 1"), "{sql}");
    // The generated SQL re-parses.
    parse_query(&sql).unwrap();
}

// --- Example 4 / Figure 4 ---------------------------------------------------

#[test]
fn example4_q3_consistent_clerks_with_multiplicity() {
    let db = figure2_db();
    let rows = consistent_answers(
        &db,
        "select o.clerk from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey",
        &figure2_sigma(),
    )
    .unwrap();
    // {ali, ali}: ali is consistent with multiplicity two (o4 and o5).
    assert_eq!(strings(&rows, 0), vec!["ali", "ali"]);
}

#[test]
fn example4_rewriting_has_multiplicity_branch() {
    let sql = rewrite_sql(
        "select o.clerk from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey",
        &figure2_sigma(),
        &RewriteOptions::default(),
    )
    .unwrap();
    assert!(sql.contains("UNION ALL"), "{sql}");
    assert!(sql.contains("HAVING count(*) > 1"), "{sql}");
    parse_query(&sql).unwrap();
}

// --- Example 5 / Figure 7: global aggregation --------------------------------

#[test]
fn example5_q4_range_of_global_sum() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows =
        consistent_answers(&db, "select sum(acctbal) as sumbal from customer", &sigma).unwrap();
    // Repairs sum to 1600, 1700, 2600, 2700: the range is [1600, 2700].
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][0], Value::Float(1600.0));
    assert_eq!(rows.rows[0][1], Value::Float(2700.0));
}

// --- Example 6 / 7: grouped aggregation --------------------------------------

#[test]
fn example6_q5_range_consistent_answers() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey, sum(acctbal) as bal from customer
         where mktsegment = 'building' group by nationkey",
        &sigma,
    )
    .unwrap();
    // {(n1, 1000, 2500)}: n1 is the only consistent group; c1 contributes
    // [1000, 2000] and filtered c2 contributes [0, 500].
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][0], Value::str("n1"));
    assert_eq!(rows.rows[0][1], Value::Float(1000.0));
    assert_eq!(rows.rows[0][2], Value::Float(2500.0));
}

// --- Example 8: negative values ----------------------------------------------

#[test]
fn example8_negative_values() {
    let db = Database::new();
    db.run_script(
        "create table customer (custkey text, nationkey text, mktsegment text, acctbal float);
         insert into customer values
           ('c1', 'n1', 'building', 1000),
           ('c1', 'n1', 'building', 2000),
           ('c2', 'n1', 'building', -500),
           ('c2', 'n1', 'banking', 600),
           ('c3', 'n2', 'banking', 100);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey, sum(acctbal) as bal from customer
         where mktsegment = 'building' group by nationkey",
        &sigma,
    )
    .unwrap();
    // The paper: range-consistent answer {(n1, 500, 2000)} — c2's negative
    // balance lowers the minimum instead of raising the maximum.
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][1], Value::Float(500.0));
    assert_eq!(rows.rows[0][2], Value::Float(2000.0));
}

// --- Example 9 / Figure 9: annotations ----------------------------------------

#[test]
fn example9_annotated_rewriting_agrees_with_plain() {
    let db = figure2_db();
    let sigma = figure2_sigma();
    let q = "select o.orderkey from customer c, orders o
             where c.acctbal > 1000 and o.custfk = c.custkey";
    let plain = consistent_answers(&db, q, &sigma).unwrap();
    annotate_database(&db, &sigma).unwrap();
    let annotated = consistent_answers_annotated(&db, q, &sigma).unwrap();
    assert_eq!(strings(&plain, 0), strings(&annotated, 0));
    assert_eq!(strings(&annotated, 0), vec!["o2", "o4", "o5"]);
}

#[test]
fn example9_annotated_rewriting_structure() {
    let sql = rewrite_sql(
        "select o.orderkey from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey",
        &figure2_sigma(),
        &RewriteOptions {
            annotated: true,
            ..Default::default()
        },
    )
    .unwrap();
    // The conscand counter and the filter guard from Section 5.
    assert!(
        sql.contains("sum(CASE WHEN c.cons = 'n' OR o.cons = 'n' THEN 1 ELSE 0 END)"),
        "{sql}"
    );
    assert!(sql.contains("conq_cand.conq_conscand > 0"), "{sql}");
    assert!(sql.contains("GROUP BY o.orderkey"), "{sql}");
    parse_query(&sql).unwrap();
}

#[test]
fn annotated_requires_annotations() {
    let db = figure2_db();
    let sigma = figure2_sigma();
    let err = consistent_answers_annotated(&db, "select orderkey from orders", &sigma).unwrap_err();
    assert!(err.to_string().contains("not annotated"));
}

#[test]
fn annotated_agg_rewriting_agrees_with_plain() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let q = "select nationkey, sum(acctbal) as bal from customer
             where mktsegment = 'building' group by nationkey";
    let plain = consistent_answers(&db, q, &sigma).unwrap();
    annotate_database(&db, &sigma).unwrap();
    let annotated = consistent_answers_annotated(&db, q, &sigma).unwrap();
    assert_eq!(plain.rows, annotated.rows);
}

// --- multiplicity / bag semantics ---------------------------------------------

#[test]
fn bag_semantics_minimum_multiplicity() {
    // A value supported by two never-filtered keys appears twice.
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v text);
         insert into t values (1, 'x'), (2, 'x'), (3, 'x'), (3, 'y');",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let rows = consistent_answers(&db, "select v from t", &sigma).unwrap();
    // Keys 1 and 2 consistently produce 'x'; key 3 is ambiguous.
    assert_eq!(strings(&rows, 0), vec!["x", "x"]);
}

#[test]
fn distinct_input_query_gets_distinct_output() {
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v text);
         insert into t values (1, 'x'), (2, 'x');",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let rows = consistent_answers(&db, "select distinct v from t", &sigma).unwrap();
    assert_eq!(strings(&rows, 0), vec!["x"]);
}

#[test]
fn key_only_projection_needs_no_filter_at_all() {
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let sql = rewrite_sql("select k from t", &sigma, &RewriteOptions::default()).unwrap();
    assert!(!sql.contains("conq_filter"), "{sql}");
    assert!(sql.contains("SELECT DISTINCT"), "{sql}");
}

// --- three-relation chains and composite keys ----------------------------------

#[test]
fn three_relation_chain_rewrites_and_runs() {
    let db = Database::new();
    db.run_script(
        "create table li (ok integer, ln integer, qty integer);
         insert into li values (1, 1, 10), (1, 2, 20), (1, 2, 25), (2, 1, 5);
         create table ord (ok integer, ck integer);
         insert into ord values (1, 100), (2, 200), (2, 300);
         create table cust (ck integer, seg text);
         insert into cust values (100, 'building'), (200, 'auto'), (300, 'auto');",
    )
    .unwrap();
    let sigma = ConstraintSet::new()
        .with_key("li", ["ok", "ln"])
        .with_key("ord", ["ok"])
        .with_key("cust", ["ck"]);
    // lineitem -> orders (partial-key to key) -> customer (non-key to key).
    let q = "select l.qty from li l, ord o, cust c
             where l.ok = o.ok and o.ck = c.ck and c.seg = 'building' and l.qty > 1";
    let tq = analyze(&parse_query(q).unwrap(), &sigma).unwrap();
    assert_eq!(tq.relations[tq.root].table, "li");
    assert_eq!(tq.loj_joins.len(), 2);

    let rows = consistent_answers(&db, q, &sigma).unwrap();
    // (1,1) -> qty 10 consistently (order 1 -> cust 100 building).
    // (1,2) has two qty values -> filtered by multiplicity.
    // (2,1) -> order 2 is inconsistent (cust 200/300 both 'auto') -> fails
    //         the segment selection in every repair; never a candidate.
    assert_eq!(strings(&rows, 0), vec!["10"]);
}

#[test]
fn key_to_key_join_is_supported() {
    let db = Database::new();
    db.run_script(
        "create table a (k integer, x integer);
         insert into a values (1, 10), (1, 20), (2, 30);
         create table b (k integer, y integer);
         insert into b values (1, 7), (2, 8), (2, 9);",
    )
    .unwrap();
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    let q = "select a.k from a, b where a.k = b.k and a.x > 5 and b.y > 6";
    let tq = analyze(&parse_query(q).unwrap(), &sigma).unwrap();
    assert_eq!(tq.kj_joins.len(), 1);
    assert!(tq.loj_joins.is_empty());
    let rows = consistent_answers(&db, q, &sigma).unwrap();
    // Both keys satisfy both selections in every repair.
    assert_eq!(strings(&rows, 0), vec!["1", "2"]);

    // Now make b's key-2 group fail the selection in one repair.
    db.run_script("insert into b values (2, 0)").unwrap();
    let rows = consistent_answers(&db, q, &sigma).unwrap();
    assert_eq!(strings(&rows, 0), vec!["1"]);
}

// --- NULL handling in selections ------------------------------------------------

#[test]
fn null_selection_values_are_filtered_by_default() {
    // A tuple whose selection condition is UNKNOWN fails the query in the
    // repairs that choose it; the default NULL-safe negation filters its key.
    let db = Database::new();
    db.run_script(
        "create table t (k integer, v integer);
         insert into t values (1, 10), (1, null), (2, 10);",
    )
    .unwrap();
    let sigma = ConstraintSet::new().with_key("t", ["k"]);
    let rows = consistent_answers(&db, "select k from t where v > 5", &sigma).unwrap();
    assert_eq!(strings(&rows, 0), vec!["2"]);
}

// --- classification errors --------------------------------------------------------

fn expect_err(q: &str, sigma: &ConstraintSet) -> RewriteError {
    conquer_core::rewrite(&parse_query(q).unwrap(), sigma, &RewriteOptions::default()).unwrap_err()
}

#[test]
fn rejects_non_key_joins() {
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    let err = expect_err("select a.k from a, b where a.x = b.y", &sigma);
    assert!(matches!(err, RewriteError::NotATreeQuery(_)), "{err}");
}

#[test]
fn rejects_inequality_joins() {
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    let err = expect_err("select a.k from a, b where a.k < b.k", &sigma);
    assert!(matches!(err, RewriteError::NotATreeQuery(_)), "{err}");
}

#[test]
fn rejects_relation_used_twice() {
    let sigma = ConstraintSet::new().with_key("a", ["k"]);
    let err = expect_err("select a1.k from a a1, a a2 where a1.k = a2.k", &sigma);
    assert!(matches!(err, RewriteError::NotATreeQuery(_)), "{err}");
}

#[test]
fn rejects_missing_key_constraint() {
    let sigma = ConstraintSet::new().with_key("a", ["k"]);
    let err = expect_err("select a.k from a, b where a.x = b.k", &sigma);
    assert!(matches!(err, RewriteError::MissingKey(_)), "{err}");
}

#[test]
fn rejects_two_parents() {
    // Both a and b join on c's key: c would have two parents.
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"])
        .with_key("c", ["k"]);
    let err = expect_err(
        "select a.k from a, b, c where a.fk = c.k and b.fk = c.k",
        &sigma,
    );
    assert!(matches!(err, RewriteError::NotATreeQuery(_)), "{err}");
}

#[test]
fn rejects_disconnected_join_graph() {
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    let err = expect_err("select a.k from a, b", &sigma);
    assert!(matches!(err, RewriteError::NotATreeQuery(_)), "{err}");
}

#[test]
fn rejects_disjunction_and_outer_join_inputs() {
    let sigma = ConstraintSet::new()
        .with_key("a", ["k"])
        .with_key("b", ["k"]);
    let err = expect_err("select k from a union all select k from b", &sigma);
    assert!(matches!(err, RewriteError::Unsupported(_)), "{err}");
    let err = expect_err("select a.k from a left outer join b on a.k = b.k", &sigma);
    assert!(matches!(err, RewriteError::Unsupported(_)), "{err}");
}

#[test]
fn rejects_nested_subqueries_with_hint() {
    let sigma = ConstraintSet::new().with_key("a", ["k"]);
    let err = expect_err("select a.k from a where exists (select * from a)", &sigma);
    assert!(err.to_string().contains("decorrelate"), "{err}");
}

#[test]
fn rejects_expressions_over_aggregates() {
    let sigma = ConstraintSet::new().with_key("a", ["k"]);
    let err = expect_err("select sum(x) + 1 from a", &sigma);
    assert!(matches!(err, RewriteError::Unsupported(_)), "{err}");
}

#[test]
fn rejects_group_by_not_in_select() {
    let sigma = ConstraintSet::new().with_key("a", ["k"]);
    let err = expect_err("select sum(x) from a group by g", &sigma);
    assert!(err.to_string().contains("SELECT list"), "{err}");
}

// --- ORDER BY / LIMIT pass-through ------------------------------------------------

#[test]
fn order_by_passes_through_join_rewriting() {
    let db = figure2_db();
    let rows = consistent_answers(
        &db,
        "select o.orderkey from customer c, orders o
         where c.acctbal > 1000 and o.custfk = c.custkey
         order by o.orderkey desc limit 2",
        &figure2_sigma(),
    )
    .unwrap();
    let vals: Vec<String> = rows.rows.iter().map(|r| r[0].to_string()).collect();
    assert_eq!(vals, vec!["o5", "o4"]);
}

#[test]
fn order_by_aggregate_alias_maps_to_min_column() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey, sum(acctbal) as bal from customer
         group by nationkey order by bal desc",
        &sigma,
    )
    .unwrap();
    // n1 (min 1500) sorts above n2 (min 100).
    assert_eq!(rows.rows[0][0], Value::str("n1"));
    assert_eq!(rows.schema.columns[1].name, "min_bal");
    assert_eq!(rows.schema.columns[2].name, "max_bal");
}

// --- MIN/MAX/COUNT/AVG ranges -------------------------------------------------------

#[test]
fn count_star_range() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey, count(*) as n from customer
         where mktsegment = 'building' group by nationkey",
        &sigma,
    )
    .unwrap();
    // n1: c1 always counts (1..1), c2 counts in half the repairs (0..1).
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.rows[0][1], Value::Int(1));
    assert_eq!(rows.rows[0][2], Value::Int(2));
}

#[test]
fn min_max_ranges() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey, min(acctbal) as lo, max(acctbal) as hi from customer
         where mktsegment = 'building' group by nationkey",
        &sigma,
    )
    .unwrap();
    assert_eq!(rows.len(), 1);
    // MIN range: lower = min(1000, 500) = 500; upper = min over unfiltered
    // keys of max(e) = 2000 (c1 only).
    assert_eq!(rows.rows[0][1], Value::Float(500.0));
    assert_eq!(rows.rows[0][2], Value::Float(2000.0));
    // MAX range: lower = max over unfiltered of min(e) = 1000;
    // upper = max over all of max(e) = 2000.
    assert_eq!(rows.rows[0][3], Value::Float(1000.0));
    assert_eq!(rows.rows[0][4], Value::Float(2000.0));
}

#[test]
fn group_by_without_aggregates_behaves_as_distinct() {
    let db = figure7_db();
    let sigma = ConstraintSet::new().with_key("customer", ["custkey"]);
    let rows = consistent_answers(
        &db,
        "select nationkey from customer group by nationkey",
        &sigma,
    )
    .unwrap();
    // n1 is consistent via c1; n2 is consistent via c3.
    assert_eq!(strings(&rows, 0), vec!["n1", "n2"]);
}
